(* Buffer cache, file I/O and the disk driver (instrumented kernel code).

   Files are named contiguous extents on disk, registered in [filetab] by
   the boot builder.  Reads go through a small buffer cache with
   sequential read-ahead (the behaviour behind compress's prediction error
   in Figure 3); the Ultrix personality writes through to disk
   synchronously — the "conservative write policy" of §4.4 — while under
   Mach file I/O happens in the user-level UX server through the raw
   disk-read/write syscalls at the end of this module.

   Blocking discipline: system calls never hold kernel stack state while
   sleeping.  A handler that must wait either returns disposition 1
   (retry: the EPC is rewound and the syscall re-executes when the process
   wakes) or disposition 2 (sleep: effects are complete, the process just
   waits for the disk before resuming). *)

open Systrace_isa

let dev_kseg1 = 0xA0000000 + Systrace_machine.Addr.device_base_pa

let make () : Objfile.t =
  let a = Asm.create "kbufcache" in
  let open Asm in
  let lgv reg sym = la a reg sym; lw a reg 0 reg in
  let module A = Systrace_machine.Addr in
  (* ---------------------------------------------------------------- *)
  (* kbuf_get(a0 = disk block) -> v0 = kseg0 page address, or 0 after
     arranging to wait (waitchan set; caller returns disposition 1).
     Clobbers t0-t7, a1-a3. *)
  func a "kbuf_get" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      lgv Reg.t0 "knbufs";
      la a Reg.t1 "bufhdrs";
      li a Reg.t2 0;
      (* pass 1: search for the block *)
      label a "$bg_scan";
      beq a Reg.t2 Reg.t0 "$bg_miss";
      nop a;
      lw a Reg.t3 Kcfg.buf_block Reg.t1;
      bne a Reg.t3 Reg.a0 "$bg_next";
      nop a;
      lw a Reg.t4 Kcfg.buf_state Reg.t1;
      addiu a Reg.t5 Reg.t4 (-1);
      beqz a Reg.t5 "$bg_hit";
      nop a;
      (* in flight: wait on it *)
      lgv Reg.t6 "curpcb";
      sw a Reg.a0 Kcfg.pcb_waitchan Reg.t6;
      li a Reg.v0 0;
      j_ a "kbuf_get$epilogue";
      label a "$bg_hit";
      lgv Reg.t6 "kticks";
      sw a Reg.t6 Kcfg.buf_lru Reg.t1;
      lw a Reg.v0 Kcfg.buf_page Reg.t1;
      j_ a "kbuf_get$epilogue";
      label a "$bg_next";
      addiu a Reg.t2 Reg.t2 1;
      i a (Insn.J (Sym "$bg_scan"));
      addiu a Reg.t1 Reg.t1 Kcfg.buf_entry_size;
      (* pass 2: choose a victim: first empty, else clean with oldest lru *)
      label a "$bg_miss";
      move a Reg.s0 Reg.zero;           (* best hdr (0 = none) *)
      li a Reg.s1 0x7FFFFFFF;           (* best lru *)
      la a Reg.t1 "bufhdrs";
      li a Reg.t2 0;
      label a "$bv_scan";
      beq a Reg.t2 Reg.t0 "$bv_done";
      nop a;
      lw a Reg.t3 Kcfg.buf_state Reg.t1;
      bnez a Reg.t3 "$bv_maybe_clean";
      nop a;
      (* empty: take it immediately *)
      move a Reg.s0 Reg.t1;
      j_ a "$bv_done";
      label a "$bv_maybe_clean";
      addiu a Reg.t4 Reg.t3 (-1);
      bnez a Reg.t4 "$bv_next";         (* in flight: skip *)
      nop a;
      lw a Reg.t5 Kcfg.buf_dirty Reg.t1;
      bnez a Reg.t5 "$bv_next";         (* dirty: skip (written back below) *)
      nop a;
      lw a Reg.t6 Kcfg.buf_lru Reg.t1;
      sltu a Reg.t7 Reg.t6 Reg.s1;
      beqz a Reg.t7 "$bv_next";
      nop a;
      move a Reg.s0 Reg.t1;
      move a Reg.s1 Reg.t6;
      label a "$bv_next";
      addiu a Reg.t2 Reg.t2 1;
      i a (Insn.J (Sym "$bv_scan"));
      addiu a Reg.t1 Reg.t1 Kcfg.buf_entry_size;
      label a "$bv_done";
      bnez a Reg.s0 "$bv_have";
      nop a;
      (* nothing reclaimable: wait for any disk completion *)
      lgv Reg.t6 "curpcb";
      li a Reg.t5 (-5);
      sw a Reg.t5 Kcfg.pcb_waitchan Reg.t6;
      li a Reg.v0 0;
      j_ a "kbuf_get$epilogue";
      label a "$bv_have";
      (* device free? *)
      li a Reg.t3 dev_kseg1;
      lw a Reg.t4 A.dev_disk_status Reg.t3;
      beqz a Reg.t4 "$bv_issue";
      nop a;
      lgv Reg.t6 "curpcb";
      li a Reg.t5 (-5);
      sw a Reg.t5 Kcfg.pcb_waitchan Reg.t6;
      li a Reg.v0 0;
      j_ a "kbuf_get$epilogue";
      label a "$bv_issue";
      sw a Reg.a0 Kcfg.buf_block Reg.s0;
      li a Reg.t5 2;
      sw a Reg.t5 Kcfg.buf_state Reg.s0;
      sw a Reg.zero Kcfg.buf_dirty Reg.s0;
      (* issue the read: addr = page - kseg0 *)
      lw a Reg.t6 Kcfg.buf_page Reg.s0;
      lui a Reg.t7 0x8000;
      subu a Reg.t6 Reg.t6 Reg.t7;
      sw a Reg.a0 A.dev_disk_block Reg.t3;
      sw a Reg.t6 A.dev_disk_addr Reg.t3;
      li a Reg.t5 1;
      sw a Reg.t5 A.dev_disk_count Reg.t3;
      sw a Reg.t5 A.dev_disk_cmd Reg.t3;
      lgv Reg.t6 "curpcb";
      sw a Reg.a0 Kcfg.pcb_waitchan Reg.t6;
      li a Reg.v0 0);
  (* ---------------------------------------------------------------- *)
  (* kbuf_prefetch(a0 = block): non-blocking sequential read-ahead.     *)
  func a "kbuf_prefetch" ~frame:0 ~saves:[] (fun () ->
      (* already cached or in flight? *)
      lgv Reg.t0 "knbufs";
      la a Reg.t1 "bufhdrs";
      li a Reg.t2 0;
      label a "$pf_scan";
      beq a Reg.t2 Reg.t0 "$pf_miss";
      nop a;
      lw a Reg.t3 Kcfg.buf_block Reg.t1;
      lw a Reg.t4 Kcfg.buf_state Reg.t1;
      beqz a Reg.t4 "$pf_next";
      nop a;
      beq a Reg.t3 Reg.a0 "kbuf_prefetch$epilogue";
      nop a;
      label a "$pf_next";
      addiu a Reg.t2 Reg.t2 1;
      i a (Insn.J (Sym "$pf_scan"));
      addiu a Reg.t1 Reg.t1 Kcfg.buf_entry_size;
      label a "$pf_miss";
      (* device busy? give up *)
      li a Reg.t5 dev_kseg1;
      lw a Reg.t6 A.dev_disk_status Reg.t5;
      bnez a Reg.t6 "kbuf_prefetch$epilogue";
      nop a;
      (* take the first empty or clean header; give up if none *)
      la a Reg.t1 "bufhdrs";
      li a Reg.t2 0;
      label a "$pv_scan";
      beq a Reg.t2 Reg.t0 "kbuf_prefetch$epilogue";
      nop a;
      lw a Reg.t4 Kcfg.buf_state Reg.t1;
      beqz a Reg.t4 "$pv_take";
      nop a;
      addiu a Reg.t3 Reg.t4 (-1);
      bnez a Reg.t3 "$pv_next";
      nop a;
      lw a Reg.t3 Kcfg.buf_dirty Reg.t1;
      beqz a Reg.t3 "$pv_take";
      nop a;
      label a "$pv_next";
      addiu a Reg.t2 Reg.t2 1;
      i a (Insn.J (Sym "$pv_scan"));
      addiu a Reg.t1 Reg.t1 Kcfg.buf_entry_size;
      label a "$pv_take";
      sw a Reg.a0 Kcfg.buf_block Reg.t1;
      li a Reg.t3 2;
      sw a Reg.t3 Kcfg.buf_state Reg.t1;
      sw a Reg.zero Kcfg.buf_dirty Reg.t1;
      lw a Reg.t6 Kcfg.buf_page Reg.t1;
      lui a Reg.t7 0x8000;
      subu a Reg.t6 Reg.t6 Reg.t7;
      sw a Reg.a0 A.dev_disk_block Reg.t5;
      sw a Reg.t6 A.dev_disk_addr Reg.t5;
      li a Reg.t3 1;
      sw a Reg.t3 A.dev_disk_count Reg.t5;
      sw a Reg.t3 A.dev_disk_cmd Reg.t5);
  (* ---------------------------------------------------------------- *)
  (* kread_file(a0 = fd, a1 = ubuf, a2 = len) -> v0 bytes / v1 disp     *)
  func a "kread_file" ~frame:24 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ]
    (fun () ->
      (* s0 = fd slot address; s1 = file entry; s2 = pos; s3 = n *)
      addiu a Reg.a0 Reg.a0 (-3);        (* console fds 0-2 reserved *)
      lgv Reg.t0 "curpcb";
      sltiu a Reg.t1 Reg.a0 Kcfg.max_fds;
      beqz a Reg.t1 "$rd_bad";
      sll a Reg.t2 Reg.a0 3;
      addu a Reg.s0 Reg.t0 Reg.t2;
      addiu a Reg.s0 Reg.s0 Kcfg.pcb_fds;
      lw a Reg.t3 0 Reg.s0;               (* file id *)
      bltz a Reg.t3 "$rd_bad";
      nop a;
      (* file entry = filetab + id*24 *)
      sll a Reg.t4 Reg.t3 4;
      sll a Reg.t5 Reg.t3 3;
      addu a Reg.t4 Reg.t4 Reg.t5;
      la a Reg.t5 "filetab";
      addu a Reg.s1 Reg.t4 Reg.t5;
      lw a Reg.s2 4 Reg.s0;               (* pos *)
      lw a Reg.t6 Kcfg.file_size_bytes Reg.s1;
      sltu a Reg.t7 Reg.s2 Reg.t6;
      beqz a Reg.t7 "$rd_eof";
      nop a;
      (* block = start + pos>>12 *)
      lw a Reg.t1 Kcfg.file_start_block Reg.s1;
      srl a Reg.t2 Reg.s2 12;
      addu a Reg.a0 Reg.t1 Reg.t2;
      sw a Reg.a1 0 Reg.sp;               (* spill ubuf, len *)
      sw a Reg.a2 4 Reg.sp;
      jal a "kbuf_get";
      bnez a Reg.v0 "$rd_have";
      nop a;
      li a Reg.v1 1;
      j_ a "kread_file$epilogue";
      label a "$rd_have";
      lw a Reg.a1 0 Reg.sp;
      lw a Reg.a2 4 Reg.sp;
      (* n = min(len, 4096 - off, size - pos) *)
      andi a Reg.t0 Reg.s2 0xFFF;         (* off *)
      addu a Reg.v0 Reg.v0 Reg.t0;        (* src = page + off *)
      li a Reg.t1 4096;
      subu a Reg.t1 Reg.t1 Reg.t0;
      sltu a Reg.t2 Reg.t1 Reg.a2;
      beqz a Reg.t2 "$rd_n1";
      move a Reg.s3 Reg.t1;
      j_ a "$rd_n2";
      label a "$rd_n1";
      move a Reg.s3 Reg.a2;
      label a "$rd_n2";
      lw a Reg.t3 Kcfg.file_size_bytes Reg.s1;
      subu a Reg.t3 Reg.t3 Reg.s2;
      sltu a Reg.t4 Reg.t3 Reg.s3;
      beqz a Reg.t4 "$rd_copy";
      nop a;
      move a Reg.s3 Reg.t3;
      label a "$rd_copy";
      (* copy s3 bytes from v0 (kseg0) to a1 (user); word loop when both
         word-aligned and a whole number of words *)
      move a Reg.t0 Reg.v0;
      move a Reg.t1 Reg.a1;
      addu a Reg.t2 Reg.t0 Reg.s3;
      or_ a Reg.t3 Reg.t0 Reg.t1;
      or_ a Reg.t3 Reg.t3 Reg.s3;
      andi a Reg.t3 Reg.t3 3;
      bnez a Reg.t3 "$rd_bloop";
      nop a;
      label a "$rd_wloop";
      beq a Reg.t0 Reg.t2 "$rd_done";
      nop a;
      lw a Reg.t4 0 Reg.t0;
      sw a Reg.t4 0 Reg.t1;
      addiu a Reg.t0 Reg.t0 4;
      i a (Insn.J (Sym "$rd_wloop"));
      addiu a Reg.t1 Reg.t1 4;
      label a "$rd_bloop";
      beq a Reg.t0 Reg.t2 "$rd_done";
      nop a;
      lbu a Reg.t4 0 Reg.t0;
      sb a Reg.t4 0 Reg.t1;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$rd_bloop"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$rd_done";
      (* pos += n *)
      addu a Reg.s2 Reg.s2 Reg.s3;
      sw a Reg.s2 4 Reg.s0;
      (* read-ahead: next block, if it exists *)
      lw a Reg.t1 Kcfg.file_start_block Reg.s1;
      srl a Reg.t2 Reg.s2 12;
      addu a Reg.a0 Reg.t1 Reg.t2;
      addiu a Reg.a0 Reg.a0 1;
      subu a Reg.t3 Reg.a0 Reg.t1;
      sll a Reg.t3 Reg.t3 12;
      lw a Reg.t4 Kcfg.file_size_bytes Reg.s1;
      sltu a Reg.t5 Reg.t3 Reg.t4;
      beqz a Reg.t5 "$rd_ret";
      nop a;
      jal a "kbuf_prefetch";
      label a "$rd_ret";
      move a Reg.v0 Reg.s3;
      li a Reg.v1 0;
      j_ a "kread_file$epilogue";
      label a "$rd_eof";
      li a Reg.v0 0;
      li a Reg.v1 0;
      j_ a "kread_file$epilogue";
      label a "$rd_bad";
      li a Reg.v0 (-1);
      li a Reg.v1 0);
  (* ---------------------------------------------------------------- *)
  (* kwrite_file(a0 = fd, a1 = ubuf, a2 = len): Ultrix synchronous
     write-through. *)
  func a "kwrite_file" ~frame:24 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ]
    (fun () ->
      addiu a Reg.a0 Reg.a0 (-3);        (* console fds 0-2 reserved *)
      lgv Reg.t0 "curpcb";
      sltiu a Reg.t1 Reg.a0 Kcfg.max_fds;
      beqz a Reg.t1 "$wr_bad";
      sll a Reg.t2 Reg.a0 3;
      addu a Reg.s0 Reg.t0 Reg.t2;
      addiu a Reg.s0 Reg.s0 Kcfg.pcb_fds;
      lw a Reg.t3 0 Reg.s0;
      bltz a Reg.t3 "$wr_bad";
      nop a;
      sll a Reg.t4 Reg.t3 4;
      sll a Reg.t5 Reg.t3 3;
      addu a Reg.t4 Reg.t4 Reg.t5;
      la a Reg.t5 "filetab";
      addu a Reg.s1 Reg.t4 Reg.t5;
      lw a Reg.s2 4 Reg.s0;
      lw a Reg.t6 Kcfg.file_size_bytes Reg.s1;
      sltu a Reg.t7 Reg.s2 Reg.t6;
      beqz a Reg.t7 "$wr_eof";
      nop a;
      (* the disk must be free before we commit to the synchronous write *)
      li a Reg.t1 dev_kseg1;
      lw a Reg.t2 A.dev_disk_status Reg.t1;
      beqz a Reg.t2 "$wr_getblk";
      nop a;
      lgv Reg.t3 "curpcb";
      li a Reg.t4 (-5);
      sw a Reg.t4 Kcfg.pcb_waitchan Reg.t3;
      li a Reg.v1 1;
      j_ a "kwrite_file$epilogue";
      label a "$wr_getblk";
      lw a Reg.t1 Kcfg.file_start_block Reg.s1;
      srl a Reg.t2 Reg.s2 12;
      addu a Reg.a0 Reg.t1 Reg.t2;
      sw a Reg.a1 0 Reg.sp;
      sw a Reg.a2 4 Reg.sp;
      sw a Reg.a0 8 Reg.sp;               (* the block number *)
      jal a "kbuf_get";
      bnez a Reg.v0 "$wr_have";
      nop a;
      li a Reg.v1 1;
      j_ a "kwrite_file$epilogue";
      label a "$wr_have";
      lw a Reg.a1 0 Reg.sp;
      lw a Reg.a2 4 Reg.sp;
      (* n = min(len, 4096-off, size-pos) *)
      andi a Reg.t0 Reg.s2 0xFFF;
      move a Reg.s3 Reg.v0;               (* page *)
      addu a Reg.v0 Reg.v0 Reg.t0;        (* dst = page + off *)
      li a Reg.t1 4096;
      subu a Reg.t1 Reg.t1 Reg.t0;
      sltu a Reg.t2 Reg.t1 Reg.a2;
      beqz a Reg.t2 "$wr_n1";
      nop a;
      move a Reg.a2 Reg.t1;
      label a "$wr_n1";
      lw a Reg.t3 Kcfg.file_size_bytes Reg.s1;
      subu a Reg.t3 Reg.t3 Reg.s2;
      sltu a Reg.t4 Reg.t3 Reg.a2;
      beqz a Reg.t4 "$wr_copy";
      nop a;
      move a Reg.a2 Reg.t3;
      label a "$wr_copy";
      (* byte copy user -> cache page *)
      move a Reg.t0 Reg.a1;
      move a Reg.t1 Reg.v0;
      addu a Reg.t2 Reg.t1 Reg.a2;
      label a "$wr_loop";
      beq a Reg.t1 Reg.t2 "$wr_cdone";
      nop a;
      lbu a Reg.t4 0 Reg.t0;
      sb a Reg.t4 0 Reg.t1;
      addiu a Reg.t0 Reg.t0 1;
      i a (Insn.J (Sym "$wr_loop"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$wr_cdone";
      addu a Reg.s2 Reg.s2 Reg.a2;
      sw a Reg.s2 4 Reg.s0;
      (* synchronous write-through: issue and sleep until it completes *)
      li a Reg.t1 dev_kseg1;
      lw a Reg.a0 8 Reg.sp;
      sw a Reg.a0 A.dev_disk_block Reg.t1;
      lui a Reg.t2 0x8000;
      subu a Reg.t3 Reg.s3 Reg.t2;
      sw a Reg.t3 A.dev_disk_addr Reg.t1;
      li a Reg.t4 1;
      sw a Reg.t4 A.dev_disk_count Reg.t1;
      li a Reg.t4 2;
      sw a Reg.t4 A.dev_disk_cmd Reg.t1;
      lgv Reg.t5 "curpcb";
      sw a Reg.a0 Kcfg.pcb_waitchan Reg.t5;
      move a Reg.v0 Reg.a2;
      li a Reg.v1 2;
      j_ a "kwrite_file$epilogue";
      label a "$wr_eof";
      li a Reg.v0 0;
      li a Reg.v1 0;
      j_ a "kwrite_file$epilogue";
      label a "$wr_bad";
      li a Reg.v0 (-1);
      li a Reg.v1 0);
  (* ---------------------------------------------------------------- *)
  (* kopen_file(a0 = user path pointer) -> fd or -1                     *)
  func a "kopen_file" ~frame:24 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      (* copy up to 15 bytes + NUL onto the stack *)
      move a Reg.t0 Reg.a0;
      move a Reg.t1 Reg.sp;
      li a Reg.t2 15;
      label a "$op_copy";
      lbu a Reg.t3 0 Reg.t0;
      sb a Reg.t3 0 Reg.t1;
      beqz a Reg.t3 "$op_scan0";
      addiu a Reg.t1 Reg.t1 1;
      addiu a Reg.t2 Reg.t2 (-1);
      i a (Insn.Bgtz (Reg.t2, Sym "$op_copy"));
      addiu a Reg.t0 Reg.t0 1;
      sb a Reg.zero 0 Reg.t1;
      label a "$op_scan0";
      (* scan the file table *)
      lgv Reg.t4 "nfiles";
      la a Reg.s0 "filetab";
      li a Reg.s1 0;
      label a "$op_scan";
      beq a Reg.s1 Reg.t4 "$op_fail";
      nop a;
      (* strcmp(sp, s0) over 16 bytes *)
      move a Reg.t0 Reg.sp;
      move a Reg.t1 Reg.s0;
      li a Reg.t2 16;
      label a "$op_cmp";
      lbu a Reg.t3 0 Reg.t0;
      lbu a Reg.t5 0 Reg.t1;
      bne a Reg.t3 Reg.t5 "$op_next";
      nop a;
      beqz a Reg.t3 "$op_found";
      addiu a Reg.t0 Reg.t0 1;
      addiu a Reg.t2 Reg.t2 (-1);
      i a (Insn.Bgtz (Reg.t2, Sym "$op_cmp"));
      addiu a Reg.t1 Reg.t1 1;
      j_ a "$op_found";
      label a "$op_next";
      addiu a Reg.s1 Reg.s1 1;
      i a (Insn.J (Sym "$op_scan"));
      addiu a Reg.s0 Reg.s0 Kcfg.file_entry_size;
      label a "$op_found";
      (* allocate an fd slot *)
      lgv Reg.t0 "curpcb";
      li a Reg.t1 0;
      label a "$op_fd";
      slti a Reg.t2 Reg.t1 Kcfg.max_fds;
      beqz a Reg.t2 "$op_fail";
      sll a Reg.t3 Reg.t1 3;
      addu a Reg.t4 Reg.t0 Reg.t3;
      lw a Reg.t5 (Kcfg.pcb_fds + 0) Reg.t4;
      bltz a Reg.t5 "$op_take";
      nop a;
      i a (Insn.J (Sym "$op_fd"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$op_take";
      sw a Reg.s1 (Kcfg.pcb_fds + 0) Reg.t4;
      sw a Reg.zero (Kcfg.pcb_fds + 4) Reg.t4;
      addiu a Reg.v0 Reg.t1 3;           (* console fds 0-2 reserved *)
      li a Reg.v1 0;
      j_ a "kopen_file$epilogue";
      label a "$op_fail";
      li a Reg.v0 (-1);
      li a Reg.v1 0);
  (* ---------------------------------------------------------------- *)
  (* kdisk_intr: service all completed requests.  Wakes processes
     waiting on the block or on any completion (-5). *)
  func a "kdisk_intr" ~frame:0 ~saves:[ Reg.s0 ] (fun () ->
      li a Reg.s0 dev_kseg1;
      label a "$di_loop";
      lw a Reg.t0 A.dev_disk_done_block Reg.s0;
      bltz a Reg.t0 "kdisk_intr$epilogue";
      nop a;
      (* buffer headers *)
      lgv Reg.t1 "knbufs";
      la a Reg.t2 "bufhdrs";
      li a Reg.t3 0;
      label a "$di_bufs";
      beq a Reg.t3 Reg.t1 "$di_reqs";
      nop a;
      lw a Reg.t4 Kcfg.buf_block Reg.t2;
      bne a Reg.t4 Reg.t0 "$di_bnext";
      nop a;
      lw a Reg.t5 Kcfg.buf_state Reg.t2;
      sltiu a Reg.t6 Reg.t5 2;
      bnez a Reg.t6 "$di_bnext";        (* not in flight *)
      nop a;
      li a Reg.t6 1;
      sw a Reg.t6 Kcfg.buf_state Reg.t2;
      sw a Reg.zero Kcfg.buf_dirty Reg.t2;
      label a "$di_bnext";
      addiu a Reg.t3 Reg.t3 1;
      i a (Insn.J (Sym "$di_bufs"));
      addiu a Reg.t2 Reg.t2 Kcfg.buf_entry_size;
      (* raw request table *)
      label a "$di_reqs";
      la a Reg.t2 "kdiskreq";
      li a Reg.t3 0;
      label a "$di_rscan";
      slti a Reg.t4 Reg.t3 8;
      beqz a Reg.t4 "$di_wake";
      nop a;
      lw a Reg.t5 0 Reg.t2;
      bne a Reg.t5 Reg.t0 "$di_rnext";
      nop a;
      lw a Reg.t5 4 Reg.t2;
      addiu a Reg.t5 Reg.t5 (-1);
      bnez a Reg.t5 "$di_rnext";
      li a Reg.t5 2;
      sw a Reg.t5 4 Reg.t2;
      label a "$di_rnext";
      addiu a Reg.t3 Reg.t3 1;
      i a (Insn.J (Sym "$di_rscan"));
      addiu a Reg.t2 Reg.t2 8;
      (* wake sleepers *)
      label a "$di_wake";
      la a Reg.t2 "pcbs";
      li a Reg.t3 0;
      label a "$di_pscan";
      slti a Reg.t4 Reg.t3 Kcfg.max_procs;
      beqz a Reg.t4 "$di_ack";
      nop a;
      lw a Reg.t5 Kcfg.pcb_state Reg.t2;
      addiu a Reg.t5 Reg.t5 (-2);
      bnez a Reg.t5 "$di_pnext";
      nop a;
      lw a Reg.t5 Kcfg.pcb_waitchan Reg.t2;
      beq a Reg.t5 Reg.t0 "$di_pwake";
      addiu a Reg.t6 Reg.t5 5;          (* waitchan == -5 ? *)
      bnez a Reg.t6 "$di_pnext";
      nop a;
      label a "$di_pwake";
      li a Reg.t5 1;
      sw a Reg.t5 Kcfg.pcb_state Reg.t2;
      li a Reg.t5 (-1);
      sw a Reg.t5 Kcfg.pcb_waitchan Reg.t2;
      label a "$di_pnext";
      addiu a Reg.t3 Reg.t3 1;
      i a (Insn.J (Sym "$di_pscan"));
      addiu a Reg.t2 Reg.t2 Kcfg.pcb_size;
      label a "$di_ack";
      sw a Reg.zero A.dev_disk_ack Reg.s0;
      j_ a "$di_loop");
  (* ---------------------------------------------------------------- *)
  (* Raw block I/O for the Mach UX server.                              *)
  (* ksys_disk_read(a0 = block, a1 = 4K-aligned user VA)                *)
  let raw_disk name cmd =
    func a name ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
        (* look for an existing request entry *)
        la a Reg.t0 "kdiskreq";
        li a Reg.t1 0;
        move a Reg.s0 Reg.zero;           (* first free entry *)
        label a ("$" ^ name ^ "_scan");
        slti a Reg.t2 Reg.t1 8;
        beqz a Reg.t2 ("$" ^ name ^ "_alloc");
        nop a;
        lw a Reg.t3 4 Reg.t0;
        bnez a Reg.t3 ("$" ^ name ^ "_used");
        nop a;
        bnez a Reg.s0 ("$" ^ name ^ "_next");
        nop a;
        move a Reg.s0 Reg.t0;
        j_ a ("$" ^ name ^ "_next");
        label a ("$" ^ name ^ "_used");
        lw a Reg.t4 0 Reg.t0;
        bne a Reg.t4 Reg.a0 ("$" ^ name ^ "_next");
        nop a;
        (* found: done? *)
        addiu a Reg.t5 Reg.t3 (-2);
        bnez a Reg.t5 ("$" ^ name ^ "_wait");
        nop a;
        sw a Reg.zero 4 Reg.t0;           (* free the entry *)
        li a Reg.v0 0;
        li a Reg.v1 0;
        j_ a (name ^ "$epilogue");
        label a ("$" ^ name ^ "_wait");
        lgv Reg.t6 "curpcb";
        sw a Reg.a0 Kcfg.pcb_waitchan Reg.t6;
        li a Reg.v1 1;
        j_ a (name ^ "$epilogue");
        label a ("$" ^ name ^ "_next");
        addiu a Reg.t1 Reg.t1 1;
        i a (Insn.J (Sym ("$" ^ name ^ "_scan")));
        addiu a Reg.t0 Reg.t0 8;
        label a ("$" ^ name ^ "_alloc");
        (* no entry: need a free slot and a free device *)
        beqz a Reg.s0 ("$" ^ name ^ "_busy");
        nop a;
        li a Reg.t2 dev_kseg1;
        lw a Reg.t3 A.dev_disk_status Reg.t2;
        bnez a Reg.t3 ("$" ^ name ^ "_busy");
        nop a;
        (* translate the user VA through the current page table *)
        lgv Reg.t4 "curpcb";
        lw a Reg.t5 Kcfg.pcb_context Reg.t4;
        srl a Reg.t6 Reg.a1 12;
        sll a Reg.t6 Reg.t6 2;
        addu a Reg.t5 Reg.t5 Reg.t6;
        lw a Reg.t5 0 Reg.t5;             (* PTE (may KTLB-miss) *)
        srl a Reg.t5 Reg.t5 12;
        sll a Reg.t5 Reg.t5 12;           (* physical page *)
        sw a Reg.a0 A.dev_disk_block Reg.t2;
        sw a Reg.t5 A.dev_disk_addr Reg.t2;
        li a Reg.t6 1;
        sw a Reg.t6 A.dev_disk_count Reg.t2;
        li a Reg.t6 cmd;
        sw a Reg.t6 A.dev_disk_cmd Reg.t2;
        sw a Reg.a0 0 Reg.s0;
        li a Reg.t6 1;
        sw a Reg.t6 4 Reg.s0;
        lgv Reg.t4 "curpcb";
        sw a Reg.a0 Kcfg.pcb_waitchan Reg.t4;
        li a Reg.v1 1;
        j_ a (name ^ "$epilogue");
        label a ("$" ^ name ^ "_busy");
        lgv Reg.t4 "curpcb";
        li a Reg.t5 (-5);
        sw a Reg.t5 Kcfg.pcb_waitchan Reg.t4;
        li a Reg.v1 1)
  in
  raw_disk "ksys_disk_read" 1;
  raw_disk "ksys_disk_write" 2;
  to_obj a
