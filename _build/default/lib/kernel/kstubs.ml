(* Exception vectors and entry/exit stubs.

   This module is linked first, at kseg0 base, so that the UTLB miss
   vector sits at 0x80000000 and the general vector at 0x80000080.  All of
   it is uninstrumented: it is either part of the tracing system or too
   delicate to rewrite mechanically (paper, §3.3) — but it is precisely
   where the tracing system's state is maintained:

   - Entry from user mode saves the interrupted context (including the
     user's stolen trace registers) into the PCB, loads the kernel's trace
     registers, and drains the per-process trace buffer into the in-kernel
     buffer, preserving the global interleaving (§3.1).
   - Entry from kernel mode pushes an exception frame on the kernel stack,
     brackets the nested activity with an EXC_ENTER marker, and gives the
     nested level its own bookkeeping frame — the "stack to maintain its
     state during multiple nested system invocations" of §3.5.
   - The UTLB refill handler is NOT traced: its behaviour under the doubled
     traced text would not be representative, so the trace-driven simulator
     synthesizes it instead (§4.1).  KTLB refills take an untraced fast
     path through the general vector for the same reason.

   Register discipline: only $k0/$k1 may be touched before the context is
   saved.  The UTLB handler parks the faulting EPC in $k1 so that a double
   miss (its PTE load faulting on an unmapped page-table page) can be
   resolved by the general vector, which detects EPC within the UTLB stub
   and returns to the parked address with a double rfe. *)

open Systrace_isa
open Systrace_tracing


(* Marker words, precomputed. *)
let w_exc_enter = Format_.marker_word (Format_.Exc_enter 0)
let w_exc_exit = Format_.marker_word Format_.Exc_exit

(* Registers saved in PCBs and exception frames: everything except
   $zero/$k0/$k1; exception frames additionally skip $t8/$t9 (the live
   kernel trace cursor and limit are shared across nesting levels). *)
let pcb_saved_regs =
  List.filter (fun r -> r <> 0 && r <> Reg.k0 && r <> Reg.k1)
    (List.init 32 Fun.id)

let frame_saved_regs =
  List.filter
    (fun r -> r <> Abi.xreg_cursor && r <> Abi.xreg_limit && r <> Reg.sp)
    pcb_saved_regs

let make ~traced : Objfile.t =
  let a = Asm.create ~no_instrument:true "kstubs" in
  let open Asm in
  (* ---------------------------------------------------------------- *)
  (* UTLB miss vector @ 0x80000000                                     *)
  global a "kvec_utlb";
  label a "kvec_utlb";
  mfc0 a Reg.k0 Insn.C0_context;
  mfc0 a Reg.k1 Insn.C0_epc;       (* park EPC for the double-miss case *)
  lw a Reg.k0 0 Reg.k0;            (* PTE; may fault into the general vector *)
  mtc0 a Reg.k0 Insn.C0_entrylo;
  nop a;
  tlbwr a;
  i a (Insn.Jr Reg.k1);
  rfe a;
  (* ---------------------------------------------------------------- *)
  (* General vector @ 0x80000080                                       *)
  pad_to a 32;
  global a "kvec_general";
  label a "kvec_general";
  (* Preserve $k1 first: it may hold the UTLB handler's parked EPC. *)
  la a Reg.k0 "ksave_k1";
  sw a Reg.k1 0 Reg.k0;
  mfc0 a Reg.k0 Insn.C0_cause;
  andi a Reg.k0 Reg.k0 0x7C;
  (* KTLB refill fast path: TLBL/TLBS with BadVAddr in kseg2. *)
  addiu a Reg.k1 Reg.k0 (-8);
  beqz a Reg.k1 "$chk_kseg2";
  addiu a Reg.k1 Reg.k0 (-12);
  beqz a Reg.k1 "$chk_kseg2";
  j_ a "kfull_entry";
  label a "$chk_kseg2";
  mfc0 a Reg.k1 Insn.C0_badvaddr;
  srl a Reg.k1 Reg.k1 30;
  addiu a Reg.k1 Reg.k1 (-3);
  beqz a Reg.k1 "$ktlb_refill";
  j_ a "kfull_entry";
  (* ---- KTLB refill: index the kseg2 root table with k0/k1 only ---- *)
  label a "$ktlb_refill";
  mfc0 a Reg.k0 Insn.C0_badvaddr;
  lui a Reg.k1 0xC000;
  subu a Reg.k0 Reg.k0 Reg.k1;
  srl a Reg.k0 Reg.k0 12;
  sll a Reg.k0 Reg.k0 2;
  i a (Insn.Lui (Reg.k1, Hi "kroot"));
  i a (Insn.Alui (ORI, Reg.k1, Reg.k1, Lo "kroot"));
  addu a Reg.k0 Reg.k0 Reg.k1;
  lw a Reg.k0 0 Reg.k0;
  (* An empty root entry means the kernel touched an unmapped page-table
     page: unrecoverable. *)
  bnez a Reg.k0 "$ktlb_ok";
  hcall a Abi.hc_panic;
  label a "$ktlb_ok";
  mtc0 a Reg.k0 Insn.C0_entrylo;
  nop a;
  tlbwr a;
  (* Double miss (EPC inside the UTLB stub, i.e. < 0x80000080)? *)
  mfc0 a Reg.k0 Insn.C0_epc;
  lui a Reg.k1 0x8000;
  subu a Reg.k0 Reg.k0 Reg.k1;
  sltiu a Reg.k0 Reg.k0 0x80;
  bnez a Reg.k0 "$ktlb_ret_double";
  mfc0 a Reg.k1 Insn.C0_epc;
  i a (Insn.Jr Reg.k1);
  rfe a;
  label a "$ktlb_ret_double";
  (* Two exception levels to pop: one rfe here, one in the jr delay slot.
     Return to the parked original EPC. *)
  rfe a;
  la a Reg.k1 "ksave_k1";
  lw a Reg.k1 0 Reg.k1;
  i a (Insn.Jr Reg.k1);
  rfe a;
  (* ---------------------------------------------------------------- *)
  (* Full entry: classify by pre-exception mode (status KUp).          *)
  label a "kfull_entry";
  mfc0 a Reg.k0 Insn.C0_status;
  andi a Reg.k0 Reg.k0 0x8;
  bnez a Reg.k0 "$from_user";
  nop a;
  (* ---------------- from kernel: push an exception frame ----------- *)
  addiu a Reg.sp Reg.sp (-Kcfg.exc_frame_size);
  List.iter (fun r -> sw a r (Kcfg.exc_regs + (4 * r)) Reg.sp) frame_saved_regs;
  mfc0 a Reg.k1 Insn.C0_epc;
  sw a Reg.k1 Kcfg.exc_epc Reg.sp;
  mfc0 a Reg.k1 Insn.C0_status;
  sw a Reg.k1 Kcfg.exc_status Reg.sp;
  sw a Reg.zero Kcfg.exc_marker Reg.sp;
  if traced then begin
    (* If kernel tracing is on: write EXC_ENTER through the live cursor and
       remember that we did; push a fresh bookkeeping frame either way. *)
    la a Reg.k0 "ktrace_on";
    lw a Reg.k0 0 Reg.k0;
    beqz a Reg.k0 "$fk_nomark";
    nop a;
    li a Reg.k1 w_exc_enter;
    sw a Reg.k1 0 Abi.xreg_cursor;
    addiu a Abi.xreg_cursor Abi.xreg_cursor 4;
    li a Reg.k1 1;
    sw a Reg.k1 Kcfg.exc_marker Reg.sp;
    label a "$fk_nomark";
    (* depth++ and point xreg_book at the new frame. *)
    la a Reg.k0 "ktrace_depth";
    lw a Reg.k1 0 Reg.k0;
    addiu a Reg.k1 Reg.k1 1;
    sw a Reg.k1 0 Reg.k0;
    sll a Reg.k1 Reg.k1 5;          (* x book_size (32) *)
    la a Reg.k0 Abi.sym_ktrace_book;
    addu a Abi.xreg_book Reg.k0 Reg.k1
  end;
  mfc0 a Reg.k0 Insn.C0_cause;
  srl a Reg.a0 Reg.k0 2;
  andi a Reg.a0 Reg.a0 0x1F;
  mfc0 a Reg.a1 Insn.C0_badvaddr;
  li a Reg.a2 0;
  j_ a "kdispatch";
  (* ---------------- from user: save context into the PCB ----------- *)
  label a "$from_user";
  la a Reg.k0 "curpcb";
  lw a Reg.k0 0 Reg.k0;
  List.iter (fun r -> sw a r (Kcfg.pcb_reg r) Reg.k0) pcb_saved_regs;
  mfc0 a Reg.k1 Insn.C0_epc;
  sw a Reg.k1 Kcfg.pcb_epc Reg.k0;
  mfc0 a Reg.k1 Insn.C0_status;
  sw a Reg.k1 Kcfg.pcb_status Reg.k0;
  la a Reg.sp "kstack_top";
  if traced then begin
    (* Load the kernel's trace registers and drain the interrupted
       process's buffer (preserving interleaving, §3.1). *)
    la a Reg.k1 "ktrace_cursor_home";
    lw a Abi.xreg_cursor 0 Reg.k1;
    la a Reg.k1 "ktrace_limit_home";
    lw a Abi.xreg_limit 0 Reg.k1;
    (* Kernel top-level bookkeeping frame; nested entries use deeper
       frames via ktrace_depth. *)
    la a Abi.xreg_book Abi.sym_ktrace_book;
    la a Reg.k0 "ktrace_depth";
    sw a Reg.zero 0 Reg.k0
  end;
  mfc0 a Reg.k0 Insn.C0_cause;
  srl a Reg.a0 Reg.k0 2;
  andi a Reg.a0 Reg.a0 0x1F;
  mfc0 a Reg.a1 Insn.C0_badvaddr;
  li a Reg.a2 1;
  if traced then jal a "kdrain";
  j_ a "kdispatch";
  (* ---------------------------------------------------------------- *)
  (* Return to user: restore the current process's context.            *)
  global a "kret_user";
  label a "kret_user";
  (* Interrupts off before touching $k0/$k1: a nested interrupt preserves
     every register EXCEPT the k-registers, so the restore sequence below
     must be atomic with respect to interrupts.  All general registers are
     dead here (they are about to be reloaded), so t0/t1 are safe even if
     an interrupt lands mid-sequence: the nested frame restores them and
     re-executes from the EPC. *)
  i a (Insn.Mfc0 (Reg.t0, C0_status));
  addiu a Reg.t1 Reg.zero (-2);
  and_ a Reg.t0 Reg.t0 Reg.t1;
  i a (Insn.Mtc0 (Reg.t0, C0_status));
  if traced then begin
    (* Run the analysis mode switch if the buffer passed its high-water
       mark (checked with interrupts still enabled). *)
    jal a "kanalysis_maybe";
    (* Park the kernel cursor. *)
    la a Reg.k1 "ktrace_cursor_home";
    sw a Abi.xreg_cursor 0 Reg.k1
  end;
  la a Reg.k0 "curpcb";
  lw a Reg.k0 0 Reg.k0;
  lw a Reg.k1 Kcfg.pcb_status Reg.k0;
  i a (Insn.Mtc0 (Reg.k1, C0_status));   (* interrupts now disabled *)
  List.iter (fun r -> lw a r (Kcfg.pcb_reg r) Reg.k0) pcb_saved_regs;
  lw a Reg.k1 Kcfg.pcb_epc Reg.k0;
  i a (Insn.Jr Reg.k1);
  rfe a;
  (* ---------------------------------------------------------------- *)
  (* Return into interrupted kernel code: pop the exception frame.     *)
  global a "kret_kernel";
  label a "kret_kernel";
  (* Same discipline as kret_user: k-registers only once interrupts are
     off.  The registers about to be restored from the frame are dead. *)
  i a (Insn.Mfc0 (Reg.t0, C0_status));
  addiu a Reg.t1 Reg.zero (-2);
  and_ a Reg.t0 Reg.t0 Reg.t1;
  i a (Insn.Mtc0 (Reg.t0, C0_status));
  if traced then begin
    (* Pop the bookkeeping frame; write EXC_EXIT iff ENTER was written. *)
    la a Reg.k0 "ktrace_depth";
    lw a Reg.k1 0 Reg.k0;
    addiu a Reg.k1 Reg.k1 (-1);
    sw a Reg.k1 0 Reg.k0;
    lw a Reg.k1 Kcfg.exc_marker Reg.sp;
    beqz a Reg.k1 "$rk_nomark";
    nop a;
    li a Reg.k1 w_exc_exit;
    sw a Reg.k1 0 Abi.xreg_cursor;
    addiu a Abi.xreg_cursor Abi.xreg_cursor 4;
    label a "$rk_nomark"
  end;
  lw a Reg.k1 Kcfg.exc_status Reg.sp;
  i a (Insn.Mtc0 (Reg.k1, C0_status));
  List.iter (fun r -> lw a r (Kcfg.exc_regs + (4 * r)) Reg.sp) frame_saved_regs;
  lw a Reg.k1 Kcfg.exc_epc Reg.sp;
  addiu a Reg.sp Reg.sp Kcfg.exc_frame_size;
  i a (Insn.Jr Reg.k1);
  rfe a;
  to_obj a
