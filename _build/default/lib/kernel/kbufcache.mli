(** The buffer cache and disk path: block lookup/fill ([kbuf_get]),
    sequential read-ahead ([kbuf_prefetch]), file read/write with
    Ultrix's synchronous write-through, the disk interrupt handler, and
    the raw block I/O the Mach UX server uses. *)

val make : unit -> Systrace_isa.Objfile.t
