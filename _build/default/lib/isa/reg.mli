(** Register numbering and the software calling convention.

    $k0/$k1 are reserved for exception stubs; $at for the assembler and
    epoxie's rewrites; $t7-$t9 are the registers the tracing system steals
    (see [Systrace_tracing.Abi]). *)

type t = int

val zero : t
val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val t8 : t
val t9 : t
val k0 : t
val k1 : t
val gp : t
val sp : t
val fp : t
val ra : t

val name : t -> string
val is_valid : t -> bool
val allocatable : t -> bool

(** Floating-point registers (16 double registers). *)

type f = int

val nfregs : int
val fname : f -> string
val f_is_valid : f -> bool
