(* Basic-block analysis of object-module text.

   Both instrumentation tools (Mahler on the Titan, epoxie on the
   DECstation) rely on basic blocks and their contents being identifiable at
   link time.  A block leader is the first instruction, any labelled
   instruction (labels are conservatively treated as potential branch
   targets), or the instruction after a control transfer's delay slot.  The
   delay slot belongs to the block of its branch.

   The static description recorded per block — instruction count and the
   position and size of each memory reference — is what the trace parsing
   library later uses to reconstruct the exact interleaving of instruction
   and data references from a one-word-per-block trace record. *)

type mem_ref = {
  pos : int;       (* instruction offset within the block *)
  bytes : int;     (* access size *)
  is_load : bool;
}

type block = {
  start : int;               (* instruction index within the module's text *)
  len : int;                 (* number of instructions *)
  mems : mem_ref list;       (* in execution order *)
}

(* Instruction array and, for each instruction index, whether it leads a
   block. *)
let leaders (items : Objfile.titem list) =
  let insns =
    Array.of_list
      (List.filter_map
         (function Objfile.Insn i -> Some i | Objfile.Label _ -> None)
         items)
  in
  let n = Array.length insns in
  let lead = Array.make (max n 1) false in
  if n > 0 then lead.(0) <- true;
  (* Labels mark the next instruction as a leader. *)
  let idx = ref 0 in
  List.iter
    (function
      | Objfile.Label _ -> if !idx < n then lead.(!idx) <- true
      | Objfile.Insn _ -> incr idx)
    items;
  (* The instruction after a delay slot is a leader. *)
  Array.iteri
    (fun i insn ->
      if Insn.is_control insn && i + 2 < n then lead.(i + 2) <- true)
    insns;
  (insns, lead)

let mem_refs insns start len =
  let refs = ref [] in
  for k = len - 1 downto 0 do
    let insn = insns.(start + k) in
    if Insn.is_mem insn then
      refs :=
        { pos = k; bytes = Insn.mem_bytes insn; is_load = Insn.is_load insn }
        :: !refs
  done;
  !refs

let analyze (items : Objfile.titem list) : block list =
  let insns, lead = leaders items in
  let n = Array.length insns in
  let rec blocks i acc =
    if i >= n then List.rev acc
    else begin
      (* Find the end of the block starting at [i]. *)
      let rec scan j =
        if j >= n then n
        else if j > i && lead.(j) then j
        else if Insn.is_control insns.(j) then
          (* Block extends through the delay slot. *)
          min n (j + 2)
        else scan (j + 1)
      in
      let stop = scan i in
      let len = stop - i in
      let b = { start = i; len; mems = mem_refs insns i len } in
      blocks stop (b :: acc)
    end
  in
  blocks 0 []

(* Number of trace words a block generates under the epoxie format:
   one block record plus one word per memory reference. *)
let trace_words b = 1 + List.length b.mems
