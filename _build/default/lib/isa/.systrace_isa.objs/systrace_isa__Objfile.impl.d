lib/isa/objfile.ml: Hashtbl Insn List Printf Set String
