lib/isa/asm.ml: Insn Int64 List Objfile Printf Reg
