lib/isa/exe.mli: Bytes Hashtbl Insn
