lib/isa/bb.mli: Objfile
