lib/isa/asm.mli: Insn Objfile
