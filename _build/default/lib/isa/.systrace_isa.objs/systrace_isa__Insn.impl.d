lib/isa/insn.ml: Printf Reg
