lib/isa/insn.mli:
