lib/isa/bb.ml: Array Insn List Objfile
