lib/isa/objfile.mli: Insn Set
