lib/isa/encode.ml: Insn Printf
