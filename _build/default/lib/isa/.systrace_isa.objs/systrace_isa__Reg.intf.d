lib/isa/reg.mli:
