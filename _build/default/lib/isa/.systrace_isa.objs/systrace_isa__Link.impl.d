lib/isa/link.ml: Array Bytes Encode Exe Hashtbl Insn Int32 List Objfile Printf String
