lib/isa/exe.ml: Array Buffer Bytes Hashtbl Insn Printf
