lib/isa/link.mli: Exe Objfile
