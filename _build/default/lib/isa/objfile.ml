(* Relocatable object modules.

   A module keeps its text as a list of items (instructions interleaved with
   labels) and its data as a list of data items.  Instructions retain
   symbolic operands; symbols and "relocations" are therefore structural,
   which is exactly the property epoxie exploits: rewriting object code at
   link time can distinguish every use of an address from a coincidentally
   similar constant, and all address correction happens statically. *)

module SSet = Set.Make (String)

type titem =
  | Label of string
  | Insn of Insn.t

type ditem =
  | Dlabel of string
  | Dword of int              (* 32-bit literal *)
  | Daddr of string * int     (* 32-bit address of symbol + addend *)
  | Dbytes of string          (* raw bytes *)
  | Dspace of int             (* zero-filled bytes *)
  | Dalign of int             (* align to given byte boundary *)

type t = {
  name : string;
  text : titem list;
  data : ditem list;
  globals : SSet.t;          (* symbols visible to other modules *)
  protected : SSet.t;        (* functions epoxie must not instrument *)
  no_instrument : bool;      (* whole module excluded from instrumentation *)
}

(* All labels defined in the text section, in order. *)
let text_labels t =
  List.filter_map (function Label l -> Some l | Insn _ -> None) t.text

let data_labels t =
  List.filter_map (function Dlabel l -> Some l | _ -> None) t.data

let insns t =
  List.filter_map (function Insn i -> Some i | Label _ -> None) t.text

let insn_count t =
  List.fold_left (fun n -> function Insn _ -> n + 1 | Label _ -> n) 0 t.text

(* Structural well-formedness checks shared by the assembler and epoxie:
   - no duplicate labels,
   - no control-transfer instruction in a delay slot,
   - no label between a control instruction and its delay slot,
   - text does not end with an unfilled delay slot. *)
let validate t =
  let seen = Hashtbl.create 64 in
  let check_dup l =
    if Hashtbl.mem seen l then
      failwith (Printf.sprintf "%s: duplicate label %S" t.name l);
    Hashtbl.add seen l ()
  in
  List.iter (function Label l -> check_dup l | Insn _ -> ()) t.text;
  List.iter (function Dlabel l -> check_dup l | _ -> ()) t.data;
  let rec walk = function
    | [] -> ()
    | Insn i :: rest when Insn.is_control i -> (
      match rest with
      | Insn d :: rest' ->
        if Insn.is_control d then
          failwith
            (Printf.sprintf "%s: control instruction in delay slot: %s"
               t.name (Insn.to_string d));
        walk rest'
      | Label l :: _ ->
        failwith
          (Printf.sprintf "%s: label %S lands in a delay slot" t.name l)
      | [] ->
        failwith
          (Printf.sprintf "%s: text ends with an unfilled delay slot" t.name))
    | _ :: rest -> walk rest
  in
  walk t.text;
  t
