(** Assembler eDSL.

    The kernel, the tracing runtime and all workloads are written against
    this module; it accumulates text and data items into an
    {!Objfile.t}.  Convenience control-transfer emitters append a [nop]
    delay slot; performance-sensitive code fills delay slots explicitly
    with {!i}, the raw instruction emitter. *)

type t

val create : ?no_instrument:bool -> string -> t
(** [create name] starts an empty module; [~no_instrument:true] marks it
    as part of the tracing system (epoxie passes it through). *)

val global : t -> string -> unit
(** Export a label to other modules. *)

val protect : t -> string -> unit
(** Mark a function as too delicate for epoxie to instrument (it is still
    register-steal-rewritten). *)

val label : t -> string -> unit
val fresh_label : t -> string -> string
val i : t -> Insn.t -> unit

val insn_count : t -> int
val pad_to : t -> int -> unit
(** Pad with nops to a fixed instruction count — used to place exception
    vectors at fixed offsets. *)

val to_obj : t -> Objfile.t
(** Runs {!Objfile.validate}. *)

(** {2 Instruction emitters}

    Thin wrappers around {!i}; operand order follows the assembly syntax
    ([lw rt, off(base)] is [lw a rt off base]). *)

val nop : t -> unit
val add : t -> int -> int -> int -> unit
val addu : t -> int -> int -> int -> unit
val subu : t -> int -> int -> int -> unit
val and_ : t -> int -> int -> int -> unit
val or_ : t -> int -> int -> int -> unit
val xor_ : t -> int -> int -> int -> unit
val nor_ : t -> int -> int -> int -> unit
val slt : t -> int -> int -> int -> unit
val sltu : t -> int -> int -> int -> unit
val mul : t -> int -> int -> int -> unit
val div_ : t -> int -> int -> int -> unit
val rem_ : t -> int -> int -> int -> unit
val sllv : t -> int -> int -> int -> unit
val srlv : t -> int -> int -> int -> unit
val addiu : t -> int -> int -> int -> unit
val andi : t -> int -> int -> int -> unit
val ori : t -> int -> int -> int -> unit
val xori : t -> int -> int -> int -> unit
val slti : t -> int -> int -> int -> unit
val sltiu : t -> int -> int -> int -> unit
val sll : t -> int -> int -> int -> unit
val srl : t -> int -> int -> int -> unit
val sra : t -> int -> int -> int -> unit
val lui : t -> int -> int -> unit
val lw : t -> int -> int -> int -> unit
val lh : t -> int -> int -> int -> unit
val lhu : t -> int -> int -> int -> unit
val lb : t -> int -> int -> int -> unit
val lbu : t -> int -> int -> int -> unit
val sw : t -> int -> int -> int -> unit
val sh : t -> int -> int -> int -> unit
val sb : t -> int -> int -> int -> unit
val ld : t -> int -> int -> int -> unit
val sd : t -> int -> int -> int -> unit
val move : t -> int -> int -> unit
val mfc0 : t -> int -> Insn.cp0 -> unit
val mtc0 : t -> int -> Insn.cp0 -> unit
val mfc1 : t -> int -> int -> unit
val mtc1 : t -> int -> int -> unit
val fadd : t -> int -> int -> int -> unit
val fsub : t -> int -> int -> int -> unit
val fmul : t -> int -> int -> int -> unit
val fdiv : t -> int -> int -> int -> unit
val fmov : t -> int -> int -> unit
val cvtdw : t -> int -> int -> unit
val truncwd : t -> int -> int -> unit
val fcmp : t -> Insn.fcond -> int -> int -> unit
val syscall : t -> unit
val tlbwr : t -> unit
val tlbwi : t -> unit
val tlbp : t -> unit
val tlbr : t -> unit
val rfe : t -> unit
val hcall : t -> int -> unit
val cache_op : t -> int -> int -> int -> unit

(** {2 Control transfers (automatic nop delay slot)} *)

val beq : t -> int -> int -> string -> unit
val bne : t -> int -> int -> string -> unit
val beqz : t -> int -> string -> unit
val bnez : t -> int -> string -> unit
val blez : t -> int -> string -> unit
val bgtz : t -> int -> string -> unit
val bltz : t -> int -> string -> unit
val bgez : t -> int -> string -> unit
val bc1t : t -> string -> unit
val bc1f : t -> string -> unit
val j_ : t -> string -> unit
val jal : t -> string -> unit
val jr_ : t -> int -> unit
val jalr : t -> int -> unit
val ret : t -> unit

(** {2 Pseudo-instructions} *)

val li : t -> int -> int -> unit
(** Load a 32-bit constant (1-2 instructions). *)

val la : t -> int -> string -> unit
(** Load a symbol's address: [lui %hi] + [ori %lo]. *)

(** {2 Function scaffolding} *)

val func : t -> string -> frame:int -> saves:int list -> (unit -> unit) -> unit
(** [func a name ~frame ~saves body]: a global function with a stack
    frame spilling $ra and [saves]; an epilogue label [name$epilogue] is
    available as an early-exit target. *)

val leaf : t -> string -> (unit -> unit) -> unit
(** Frameless global function ending in [jr $ra]. *)

(** {2 Data emitters} *)

val dlabel : t -> string -> unit
val word : t -> int -> unit
val words : t -> int list -> unit
val addr : ?addend:int -> t -> string -> unit
val bytes : t -> string -> unit
val asciiz : t -> string -> unit
val space : t -> int -> unit
val align : t -> int -> unit
val double : t -> float -> unit
(** A float constant as two little-endian data words. *)
