(** Binary encoding of instructions into 32-bit words.

    The machine keeps encoded instructions in simulated memory: the
    tracing runtime's memtrace loads the word in its delay slot and
    partially decodes it, exactly as in the paper.  [encode]/[decode] are
    inverse for resolved instructions (branch offsets are PC-relative, so
    both take the instruction's address); this is checked by a round-trip
    property test. *)

exception Error of string

val encode : pc:int -> Insn.t -> int
(** Raises {!Error} on unresolved operands, out-of-range immediates,
    misaligned or out-of-region targets. *)

val decode : pc:int -> int -> Insn.t
(** Raises {!Error} on undefined encodings. *)

val base_offset_of_word : int -> int * int
(** [(base register, sign-extended 16-bit offset)] of an encoded I-type
    word — what memtrace extracts from its delay slot. *)
