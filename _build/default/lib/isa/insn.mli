(** Instruction set of the simulated machine.

    MIPS-I-flavoured: 32-bit fixed-width instructions, one branch delay
    slot, software-managed TLB (CP0), floating point (CP1).  Documented
    deviations from real MIPS-I are listed in the implementation header
    and DESIGN.md.

    Instructions carry symbolic operands ([Lo]/[Hi]/[Sym]) until link
    time — the symbol/relocation information that lets epoxie distinguish
    addresses from coincidentally similar constants (paper §3.2). *)

type alu =
  | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR | SLT | SLTU
  | SLLV | SRLV | SRAV | MUL | MULH | DIV | REM

type alui = ADDI | ADDIU | SLTI | SLTIU | ANDI | ORI | XORI

type shift = SLL | SRL | SRA

type width = B | BU | H | HU | W

type fop = FADD | FSUB | FMUL | FDIV | FABS | FNEG | FMOV | CVTDW | TRUNCWD

type fcond = FEQ | FLT | FLE

type cp0 =
  | C0_index | C0_random | C0_entrylo | C0_context | C0_badvaddr
  | C0_count | C0_entryhi | C0_status | C0_cause | C0_epc | C0_prid

(** 16-bit immediate, possibly a symbolic half of an address. [Lo] is only
    legal in zero-extending contexts (ORI/ANDI/XORI); the linker enforces
    this. *)
type imm = Imm of int | Lo of string | Hi of string

type target = Abs of int | Sym of string

type t =
  | Alu of alu * int * int * int          (** rd, rs, rt *)
  | Alui of alui * int * int * imm        (** rt, rs, imm *)
  | Shift of shift * int * int * int      (** rd, rt, sa *)
  | Lui of int * imm
  | Load of width * int * int * imm       (** rt, base, offset *)
  | Store of width * int * int * imm
  | Fload of int * int * imm              (** ft, base, offset; 8 bytes *)
  | Fstore of int * int * imm
  | Beq of int * int * target
  | Bne of int * int * target
  | Blez of int * target
  | Bgtz of int * target
  | Bltz of int * target
  | Bgez of int * target
  | J of target
  | Jal of target
  | Jr of int
  | Jalr of int * int                     (** rd, rs *)
  | Syscall
  | Break of int
  | Mfc0 of int * cp0
  | Mtc0 of int * cp0
  | Tlbr | Tlbwi | Tlbwr | Tlbp | Rfe
  | Mfc1 of int * int
  | Mtc1 of int * int
  | Fop of fop * int * int * int          (** fd, fs, ft *)
  | Fcmp of fcond * int * int
  | Bc1t of target
  | Bc1f of target
  | Cache of int * int * imm              (** op, base, offset *)
  | Hcall of int                          (** host hypercall (privileged) *)

val nop : t

val trace_count_nop : int -> t
(** The special epoxie no-op: a load-immediate to $zero whose immediate
    carries the number of trace words the block generates. *)

(** {2 Classification} *)

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

val mem_base_offset : t -> (int * imm) option
val mem_bytes : t -> int
(** Raises [Invalid_argument] on a non-memory instruction. *)

val is_control : t -> bool
(** Every control transfer has a single delay slot. *)

val branch_target : t -> target option
val falls_through : t -> bool

(** {2 Register uses and definitions (GPRs), for register stealing} *)

val uses : t -> int list
val defs : t -> int list

(** {2 Pretty printing and linking support} *)

val to_string : t -> string
val resolved : t -> bool
(** No symbolic operands remain: the instruction can be encoded. *)
