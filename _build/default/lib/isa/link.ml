(* Linker: lays out object modules, resolves symbolic operands, encodes.

   Local labels resolve within their module first, then against the global
   symbol table; every local label is also exported to the executable's
   symbol table under "module::label" so post-link tools (epoxie's
   basic-block map construction, the validation harness) can find exact
   addresses. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type layout = {
  text_base : int;
  data_base : int;
}

let align_up v n = (v + n - 1) land lnot (n - 1)

(* First pass: assign addresses to every text and data label. Returns
   (per-module local envs, global env, total text words, data size). *)
let assign_addresses layout (mods : Objfile.t list) =
  let globals : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let module_names = Hashtbl.create 16 in
  List.iter
    (fun (m : Objfile.t) ->
      if Hashtbl.mem module_names m.name then
        err "duplicate module name %S" m.name;
      Hashtbl.add module_names m.name ())
    mods;
  (* Text layout *)
  let locals = Hashtbl.create 16 in
  let pc = ref layout.text_base in
  List.iter
    (fun (m : Objfile.t) ->
      let env = Hashtbl.create 64 in
      Hashtbl.add locals m.name env;
      (* Synthetic symbol marking the module's first instruction, used by
         epoxie's block-map construction. *)
      Hashtbl.add env "$text_start" !pc;
      List.iter
        (function
          | Objfile.Label l ->
            if Hashtbl.mem env l then err "%s: duplicate label %S" m.name l;
            Hashtbl.add env l !pc
          | Objfile.Insn _ -> pc := !pc + 4)
        m.text)
    mods;
  let text_words = (!pc - layout.text_base) / 4 in
  (* Data layout *)
  let daddr = ref layout.data_base in
  List.iter
    (fun (m : Objfile.t) ->
      daddr := align_up !daddr 8;
      let env = Hashtbl.find locals m.name in
      (* Labels bind to the *aligned* start of the next datum: a label
         preceding a word must point at the word, not at the unaligned
         position after an odd-length string. *)
      let pending = ref [] in
      let bind () =
        List.iter
          (fun l ->
            if Hashtbl.mem env l then err "%s: duplicate label %S" m.name l;
            Hashtbl.add env l !daddr)
          (List.rev !pending);
        pending := []
      in
      List.iter
        (function
          | Objfile.Dlabel l -> pending := l :: !pending
          | Objfile.Dword _ | Objfile.Daddr _ ->
            daddr := align_up !daddr 4;
            bind ();
            daddr := !daddr + 4
          | Objfile.Dbytes s ->
            bind ();
            daddr := !daddr + String.length s
          | Objfile.Dspace n ->
            bind ();
            daddr := !daddr + n
          | Objfile.Dalign n ->
            daddr := align_up !daddr n;
            bind ())
        m.data;
      bind ())
    mods;
  let data_size = !daddr - layout.data_base in
  (* Export globals *)
  List.iter
    (fun (m : Objfile.t) ->
      let env = Hashtbl.find locals m.name in
      Objfile.SSet.iter
        (fun g ->
          match Hashtbl.find_opt env g with
          | Some a ->
            if Hashtbl.mem globals g then
              err "global symbol %S defined in multiple modules" g;
            Hashtbl.add globals g a
          | None -> err "%s: global %S has no definition" m.name g)
        m.globals)
    mods;
  (locals, globals, text_words, data_size)

let lookup ~mname ~local ~globals sym =
  match Hashtbl.find_opt local sym with
  | Some a -> a
  | None -> (
    match Hashtbl.find_opt globals sym with
    | Some a -> a
    | None -> err "%s: undefined symbol %S" mname sym)

(* Resolve the symbolic operands of one instruction. [Lo] is only legal in
   zero-extending immediate contexts (ORI/ANDI/XORI), which is how [Asm.la]
   emits it; a [Lo] in a sign-extended context would silently corrupt
   addresses with bit 15 set. *)
let resolve_insn ~mname ~local ~globals (insn : Insn.t) : Insn.t =
  let find = lookup ~mname ~local ~globals in
  let imm ~zero_extend = function
    | Insn.Imm n -> Insn.Imm n
    | Insn.Hi s -> Insn.Imm ((find s lsr 16) land 0xFFFF)
    | Insn.Lo s ->
      if not zero_extend then
        err "%s: %%lo(%s) used in a sign-extending context" mname s;
      Insn.Imm (find s land 0xFFFF)
  in
  let target = function
    | Insn.Abs a -> Insn.Abs a
    | Insn.Sym s -> Insn.Abs (find s)
  in
  match insn with
  | Alui (op, rt, rs, im) ->
    let ze = match op with ANDI | ORI | XORI -> true | _ -> false in
    Alui (op, rt, rs, imm ~zero_extend:ze im)
  | Lui (rt, im) -> Lui (rt, imm ~zero_extend:true im)
  | Load (w, rt, b, im) -> Load (w, rt, b, imm ~zero_extend:false im)
  | Store (w, rt, b, im) -> Store (w, rt, b, imm ~zero_extend:false im)
  | Fload (ft, b, im) -> Fload (ft, b, imm ~zero_extend:false im)
  | Fstore (ft, b, im) -> Fstore (ft, b, imm ~zero_extend:false im)
  | Cache (op, b, im) -> Cache (op, b, imm ~zero_extend:false im)
  | Beq (rs, rt, t) -> Beq (rs, rt, target t)
  | Bne (rs, rt, t) -> Bne (rs, rt, target t)
  | Blez (rs, t) -> Blez (rs, target t)
  | Bgtz (rs, t) -> Bgtz (rs, target t)
  | Bltz (rs, t) -> Bltz (rs, target t)
  | Bgez (rs, t) -> Bgez (rs, target t)
  | J t -> J (target t)
  | Jal t -> Jal (target t)
  | Bc1t t -> Bc1t (target t)
  | Bc1f t -> Bc1f (target t)
  | ( Alu _ | Shift _ | Jr _ | Jalr _ | Syscall | Break _ | Hcall _
    | Mfc0 _ | Mtc0 _ | Tlbr | Tlbwi | Tlbwr | Tlbp | Rfe | Mfc1 _ | Mtc1 _
    | Fop _ | Fcmp _ ) as i -> i

let link ?(traced = false) ~name ~text_base ~data_base ~entry
    (mods : Objfile.t list) : Exe.t =
  let mods = List.map Objfile.validate mods in
  let layout = { text_base; data_base } in
  let locals, globals, text_words, data_size =
    assign_addresses layout mods
  in
  let text = Array.make text_words 0 in
  let text_insns = Array.make text_words Insn.nop in
  let data = Bytes.make data_size '\000' in
  let symbols = Hashtbl.create 512 in
  Hashtbl.iter (fun g a -> Hashtbl.replace symbols g a) globals;
  List.iter
    (fun (m : Objfile.t) ->
      let env = Hashtbl.find locals m.name in
      Hashtbl.iter
        (fun l a -> Hashtbl.replace symbols (m.name ^ "::" ^ l) a)
        env)
    mods;
  (* Second pass: resolve and encode text, build the data image. *)
  let idx = ref 0 in
  List.iter
    (fun (m : Objfile.t) ->
      let local = Hashtbl.find locals m.name in
      List.iter
        (function
          | Objfile.Label _ -> ()
          | Objfile.Insn insn ->
            let pc = text_base + (!idx * 4) in
            let resolved =
              resolve_insn ~mname:m.name ~local ~globals insn
            in
            text_insns.(!idx) <- resolved;
            (try text.(!idx) <- Encode.encode ~pc resolved
             with Encode.Error e ->
               err "%s: at 0x%x: %s (%s)" m.name pc e (Insn.to_string insn));
            incr idx)
        m.text)
    mods;
  let daddr = ref data_base in
  let put_word v =
    daddr := align_up !daddr 4;
    let off = !daddr - data_base in
    Bytes.set_int32_le data off (Int32.of_int (v land 0xFFFFFFFF));
    daddr := !daddr + 4
  in
  List.iter
    (fun (m : Objfile.t) ->
      daddr := align_up !daddr 8;
      let local = Hashtbl.find locals m.name in
      List.iter
        (function
          | Objfile.Dlabel _ -> ()
          | Objfile.Dword v -> put_word v
          | Objfile.Daddr (s, addend) ->
            put_word (lookup ~mname:m.name ~local ~globals s + addend)
          | Objfile.Dbytes s ->
            Bytes.blit_string s 0 data (!daddr - data_base) (String.length s);
            daddr := !daddr + String.length s
          | Objfile.Dspace n -> daddr := !daddr + n
          | Objfile.Dalign n -> daddr := align_up !daddr n)
        m.data)
    mods;
  let entry_addr =
    match Hashtbl.find_opt globals entry with
    | Some a -> a
    | None -> err "entry symbol %S undefined" entry
  in
  {
    Exe.name;
    entry = entry_addr;
    text_base;
    text;
    text_insns;
    data_base;
    data;
    symbols;
    traced;
  }
