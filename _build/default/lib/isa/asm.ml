(* Assembler eDSL.

   The kernel, the tracing runtime, and all twelve workloads are written
   against this module.  It accumulates text/data items into an
   [Objfile.t].  Convenience emitters for control transfers append a [nop]
   delay slot; performance-sensitive code fills delay slots explicitly with
   [i] (the raw instruction emitter).

   Pseudo-instructions:
     [li]  — load 32-bit immediate (1-2 instructions)
     [la]  — load symbol address (lui + ori, so the linker never needs the
             sign-adjusted %hi trick; [Lo] is only legal in zero-extending
             contexts, which the linker enforces)                         *)

open Insn

type t = {
  name : string;
  mutable rev_text : Objfile.titem list;
  mutable rev_data : Objfile.ditem list;
  mutable globals : Objfile.SSet.t;
  mutable protected : Objfile.SSet.t;
  no_instrument : bool;
  mutable label_counter : int;
}

let create ?(no_instrument = false) name =
  {
    name;
    rev_text = [];
    rev_data = [];
    globals = Objfile.SSet.empty;
    protected = Objfile.SSet.empty;
    no_instrument;
    label_counter = 0;
  }

let global a l = a.globals <- Objfile.SSet.add l a.globals

let protect a l = a.protected <- Objfile.SSet.add l a.protected

let label a l = a.rev_text <- Objfile.Label l :: a.rev_text

(* A fresh module-unique local label, for compiled control structures. *)
let fresh_label a prefix =
  a.label_counter <- a.label_counter + 1;
  Printf.sprintf ".%s_%d" prefix a.label_counter

let i a insn = a.rev_text <- Objfile.Insn insn :: a.rev_text

let insn_count a =
  List.fold_left
    (fun n -> function Objfile.Insn _ -> n + 1 | Objfile.Label _ -> n)
    0 a.rev_text

(* Pad with nops until the module contains [n] instructions — used to place
   exception vectors at fixed offsets. *)
let pad_to a n =
  let cur = insn_count a in
  if cur > n then
    failwith
      (Printf.sprintf "%s: pad_to %d but already at %d instructions" a.name n cur);
  for _ = cur + 1 to n do
    a.rev_text <- Objfile.Insn Insn.nop :: a.rev_text
  done

let to_obj a : Objfile.t =
  Objfile.validate
    {
      name = a.name;
      text = List.rev a.rev_text;
      data = List.rev a.rev_data;
      globals = a.globals;
      protected = a.protected;
      no_instrument = a.no_instrument;
    }

(* ------------------------------------------------------------------ *)
(* Instruction emitters                                                 *)

let nop a = i a Insn.nop
let addu a rd rs rt = i a (Alu (ADDU, rd, rs, rt))
let add a rd rs rt = i a (Alu (ADD, rd, rs, rt))
let subu a rd rs rt = i a (Alu (SUBU, rd, rs, rt))
let and_ a rd rs rt = i a (Alu (AND, rd, rs, rt))
let or_ a rd rs rt = i a (Alu (OR, rd, rs, rt))
let xor_ a rd rs rt = i a (Alu (XOR, rd, rs, rt))
let nor_ a rd rs rt = i a (Alu (NOR, rd, rs, rt))
let slt a rd rs rt = i a (Alu (SLT, rd, rs, rt))
let sltu a rd rs rt = i a (Alu (SLTU, rd, rs, rt))
let mul a rd rs rt = i a (Alu (MUL, rd, rs, rt))
let div_ a rd rs rt = i a (Alu (DIV, rd, rs, rt))
let rem_ a rd rs rt = i a (Alu (REM, rd, rs, rt))
let sllv a rd rs rt = i a (Alu (SLLV, rd, rs, rt))
let srlv a rd rs rt = i a (Alu (SRLV, rd, rs, rt))
let addiu a rt rs v = i a (Alui (ADDIU, rt, rs, Imm v))
let andi a rt rs v = i a (Alui (ANDI, rt, rs, Imm v))
let ori a rt rs v = i a (Alui (ORI, rt, rs, Imm v))
let xori a rt rs v = i a (Alui (XORI, rt, rs, Imm v))
let slti a rt rs v = i a (Alui (SLTI, rt, rs, Imm v))
let sltiu a rt rs v = i a (Alui (SLTIU, rt, rs, Imm v))
let sll a rd rt sa = i a (Shift (SLL, rd, rt, sa))
let srl a rd rt sa = i a (Shift (SRL, rd, rt, sa))
let sra a rd rt sa = i a (Shift (SRA, rd, rt, sa))
let lui a rt v = i a (Lui (rt, Imm v))
let lw a rt off base = i a (Load (W, rt, base, Imm off))
let lh a rt off base = i a (Load (H, rt, base, Imm off))
let lhu a rt off base = i a (Load (HU, rt, base, Imm off))
let lb a rt off base = i a (Load (B, rt, base, Imm off))
let lbu a rt off base = i a (Load (BU, rt, base, Imm off))
let sw a rt off base = i a (Store (W, rt, base, Imm off))
let sh a rt off base = i a (Store (H, rt, base, Imm off))
let sb a rt off base = i a (Store (B, rt, base, Imm off))
let ld a ft off base = i a (Fload (ft, base, Imm off))
let sd a ft off base = i a (Fstore (ft, base, Imm off))
let move a rd rs = i a (Alu (ADDU, rd, rs, Reg.zero))
let mfc0 a rt c = i a (Mfc0 (rt, c))
let mtc0 a rt c = i a (Mtc0 (rt, c))
let mfc1 a rt fs = i a (Mfc1 (rt, fs))
let mtc1 a rt fs = i a (Mtc1 (rt, fs))
let fadd a fd fs ft = i a (Fop (FADD, fd, fs, ft))
let fsub a fd fs ft = i a (Fop (FSUB, fd, fs, ft))
let fmul a fd fs ft = i a (Fop (FMUL, fd, fs, ft))
let fdiv a fd fs ft = i a (Fop (FDIV, fd, fs, ft))
let fmov a fd fs = i a (Fop (FMOV, fd, fs, 0))
let cvtdw a fd fs = i a (Fop (CVTDW, fd, fs, 0))
let truncwd a fd fs = i a (Fop (TRUNCWD, fd, fs, 0))
let fcmp a c fs ft = i a (Fcmp (c, fs, ft))
let syscall a = i a Syscall
let tlbwr a = i a Tlbwr
let tlbwi a = i a Tlbwi
let tlbp a = i a Tlbp
let tlbr a = i a Tlbr
let rfe a = i a Rfe
let hcall a n = i a (Hcall n)
let cache_op a op off base = i a (Cache (op, base, Imm off))

(* Control transfers with an automatic nop delay slot. *)
let beq a rs rt l = i a (Beq (rs, rt, Sym l)); nop a
let bne a rs rt l = i a (Bne (rs, rt, Sym l)); nop a
let beqz a rs l = beq a rs Reg.zero l
let bnez a rs l = bne a rs Reg.zero l
let blez a rs l = i a (Blez (rs, Sym l)); nop a
let bgtz a rs l = i a (Bgtz (rs, Sym l)); nop a
let bltz a rs l = i a (Bltz (rs, Sym l)); nop a
let bgez a rs l = i a (Bgez (rs, Sym l)); nop a
let bc1t a l = i a (Bc1t (Sym l)); nop a
let bc1f a l = i a (Bc1f (Sym l)); nop a
let j_ a l = i a (J (Sym l)); nop a
let jal a l = i a (Jal (Sym l)); nop a
let jr_ a rs = i a (Jr rs); nop a
let jalr a rs = i a (Jalr (Reg.ra, rs)); nop a
let ret a = jr_ a Reg.ra

(* ------------------------------------------------------------------ *)
(* Pseudo-instructions                                                  *)

(* Load a 32-bit constant. Accepts any value in [-2^31, 2^32). *)
let li a rt v =
  let v32 = v land 0xFFFFFFFF in
  if v >= -32768 && v <= 32767 then addiu a rt Reg.zero v
  else if v32 land 0xFFFF = 0 then lui a rt (v32 lsr 16)
  else begin
    lui a rt (v32 lsr 16);
    ori a rt rt (v32 land 0xFFFF)
  end

(* Load the address of a symbol: lui %hi + ori %lo (zero-extending, so no
   sign-adjustment is needed). *)
let la a rt sym =
  i a (Lui (rt, Hi sym));
  i a (Alui (ORI, rt, rt, Lo sym))

(* ------------------------------------------------------------------ *)
(* Function scaffolding                                                 *)

(* [func a name ~frame ~saves body] defines a function with a stack frame:
   ra and the listed callee-saved registers are spilled at the top of the
   frame; [frame] extra bytes are reserved below them for locals. *)
let func a name ~frame ~saves body =
  let nsave = 1 + List.length saves in
  let size = frame + (nsave * 4) in
  let size = (size + 7) land lnot 7 in
  global a name;
  label a name;
  addiu a Reg.sp Reg.sp (-size);
  sw a Reg.ra (size - 4) Reg.sp;
  List.iteri (fun k r -> sw a r (size - 8 - (4 * k)) Reg.sp) saves;
  body ();
  label a (name ^ "$epilogue");
  lw a Reg.ra (size - 4) Reg.sp;
  List.iteri (fun k r -> lw a r (size - 8 - (4 * k)) Reg.sp) saves;
  i a (Jr Reg.ra);
  addiu a Reg.sp Reg.sp size (* delay slot *)

(* Leaf function: no frame, no saves. *)
let leaf a name body =
  global a name;
  label a name;
  body ();
  ret a

(* ------------------------------------------------------------------ *)
(* Data emitters                                                        *)

let dlabel a l = a.rev_data <- Objfile.Dlabel l :: a.rev_data
let word a v = a.rev_data <- Objfile.Dword v :: a.rev_data
let addr ?(addend = 0) a sym = a.rev_data <- Objfile.Daddr (sym, addend) :: a.rev_data
let bytes a s = a.rev_data <- Objfile.Dbytes s :: a.rev_data
let asciiz a s = a.rev_data <- Objfile.Dbytes (s ^ "\000") :: a.rev_data
let space a n = a.rev_data <- Objfile.Dspace n :: a.rev_data
let align a n = a.rev_data <- Objfile.Dalign n :: a.rev_data

let words a vs = List.iter (word a) vs

(* Emit a double constant as two data words (little-endian word order). *)
let double a f =
  let bits = Int64.bits_of_float f in
  word a (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  word a (Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xFFFFFFFFL))
