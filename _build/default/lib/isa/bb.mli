(** Basic-block analysis of object-module text.

    A leader is the first instruction, any labelled instruction, or the
    instruction after a control transfer's delay slot; the delay slot
    belongs to its branch's block.  The static per-block description —
    instruction count plus the position and size of every memory
    reference — is what the trace parsing library uses to reconstruct the
    interleaved reference stream from one-word block records. *)

type mem_ref = {
  pos : int;       (** instruction offset within the block *)
  bytes : int;
  is_load : bool;
}

type block = {
  start : int;     (** instruction index within the module's text *)
  len : int;
  mems : mem_ref list;
}

val analyze : Objfile.titem list -> block list

val trace_words : block -> int
(** Trace words the block generates under the epoxie format: one record
    plus one word per memory reference. *)
