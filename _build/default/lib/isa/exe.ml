(* Linked executable images.

   Data and BSS are merged: [Dspace] regions are zero-filled in the data
   image, so loading an executable is a matter of copying [text] and [data]
   into (virtual or physical) memory at their bases. *)

type t = {
  name : string;
  entry : int;
  text_base : int;
  text : int array;            (* encoded instruction words *)
  text_insns : Insn.t array;   (* resolved ASTs, for disassembly and tools *)
  data_base : int;
  data : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  (* Ultrix marks traced programs with a flag in the executable image
     (paper, section 3.6). *)
  traced : bool;
}

let symbol t name =
  match Hashtbl.find_opt t.symbols name with
  | Some a -> a
  | None -> failwith (Printf.sprintf "%s: no such symbol %S" t.name name)

let symbol_opt t name = Hashtbl.find_opt t.symbols name

let text_size_bytes t = Array.length t.text * 4
let text_limit t = t.text_base + text_size_bytes t
let data_limit t = t.data_base + Bytes.length t.data

let contains_text_addr t a = a >= t.text_base && a < text_limit t

let disassemble ?(lo = 0) ?(hi = max_int) t =
  let b = Buffer.create 1024 in
  let rev = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name addr ->
      if not (Hashtbl.mem rev addr) then Hashtbl.add rev addr name)
    t.symbols;
  Array.iteri
    (fun idx insn ->
      let addr = t.text_base + (idx * 4) in
      if addr >= lo && addr < hi then begin
        (match Hashtbl.find_opt rev addr with
        | Some l -> Buffer.add_string b (Printf.sprintf "%s:\n" l)
        | None -> ());
        Buffer.add_string b
          (Printf.sprintf "  %08x:  %s\n" addr (Insn.to_string insn))
      end)
    t.text_insns;
  Buffer.contents b
