(** Relocatable object modules.

    Text is a list of instructions interleaved with labels; instructions
    keep symbolic operands, so symbols and relocations are structural —
    the property epoxie exploits to do all address correction statically
    at link time. *)

module SSet : Set.S with type elt = string

type titem =
  | Label of string
  | Insn of Insn.t

type ditem =
  | Dlabel of string
  | Dword of int
  | Daddr of string * int     (** address of symbol + addend *)
  | Dbytes of string
  | Dspace of int             (** zero-filled *)
  | Dalign of int

type t = {
  name : string;
  text : titem list;
  data : ditem list;
  globals : SSet.t;          (** symbols visible to other modules *)
  protected : SSet.t;        (** functions epoxie must not instrument *)
  no_instrument : bool;      (** whole module excluded from instrumentation *)
}

val text_labels : t -> string list
val data_labels : t -> string list
val insns : t -> Insn.t list
val insn_count : t -> int

val validate : t -> t
(** Structural checks (raises [Failure]): duplicate labels, control
    transfers in delay slots, labels landing in delay slots, text ending
    with an unfilled slot. *)
