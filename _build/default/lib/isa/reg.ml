(* General-purpose register numbering and the MIPS-flavoured software
   calling convention used throughout the kernel and workloads.

   r26/r27 (k0/k1) are reserved for exception handlers and are never used by
   compiled (eDSL) code, mirroring the real MIPS convention the tracing
   system depends on: the exception stubs may clobber them at any moment. *)

type t = int (* 0..31 *)

let zero = 0
let at = 1 (* assembler temporary; used by register-stealing rewrites *)
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let k0 = 26
let k1 = 27
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let names =
  [| "zero"; "at"; "v0"; "v1"; "a0"; "a1"; "a2"; "a3";
     "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7";
     "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "t8"; "t9"; "k0"; "k1"; "gp"; "sp"; "fp"; "ra" |]

let name r =
  if r < 0 || r > 31 then invalid_arg "Reg.name"
  else "$" ^ names.(r)

let is_valid r = r >= 0 && r <= 31

(* Registers that eDSL-compiled code may use freely.  k0/k1 belong to the
   exception stubs.  [at] is reserved for the assembler (and for epoxie's
   register-stealing rewrites). *)
let allocatable r = is_valid r && r <> k0 && r <> k1 && r <> at && r <> zero

(* Floating-point registers: 16 double registers f0..f15. *)
type f = int

let nfregs = 16
let fname f =
  if f < 0 || f >= nfregs then invalid_arg "Reg.fname"
  else Printf.sprintf "$f%d" f
let f_is_valid f = f >= 0 && f < nfregs
