(** Linker: lays out object modules, resolves symbolic operands, encodes.

    Local labels resolve within their module first, then against the
    global symbol table; every local label is also exported to the
    executable under "module::label" (plus the synthetic
    "module::$text_start"), so post-link tools — epoxie's block-map
    construction, the validation harness — can find exact addresses. *)

exception Error of string

val link :
  ?traced:bool ->
  name:string ->
  text_base:int ->
  data_base:int ->
  entry:string ->
  Objfile.t list ->
  Exe.t
(** Raises {!Error} on undefined or duplicate symbols, [%lo] in a
    sign-extending context, duplicate module names, or encoding failures
    (annotated with module and address). *)
