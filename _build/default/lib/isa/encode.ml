(* Binary encoding of instructions into 32-bit words.

   The machine keeps real encoded instructions in simulated memory: the
   epoxie runtime's [memtrace] routine loads the word in its branch delay
   slot and partially decodes it to find the base register and offset of the
   memory reference, exactly as in the paper.  Encoding therefore has to be a
   faithful bijection, checked by a round-trip property test.

   Layout (own opcode map, MIPS-like formats):
     R-type:  op[31:26]=0  rs[25:21] rt[20:16] rd[15:11] sa[10:6] funct[5:0]
     I-type:  op[31:26]    rs[25:21] rt[20:16] imm[15:0]
     J-type:  op[31:26]    index[25:0]  (word index within 256MB region)

   Branch immediates are signed word offsets relative to the delay slot
   (pc + 4), so both [encode] and [decode] take the instruction's address. *)

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let mask16 = 0xFFFF
let mask32 = 0xFFFFFFFF

let signed16 v =
  let v = v land mask16 in
  if v >= 0x8000 then v - 0x10000 else v

let check_signed16 what v =
  if v < -32768 || v > 32767 then err "%s immediate %d out of signed 16-bit range" what v

let check_unsigned16 what v =
  if v < 0 || v > 65535 then err "%s immediate %d out of unsigned 16-bit range" what v

(* Opcodes *)
let op_regimm = 1
let op_j = 2
let op_jal = 3
let op_beq = 4
let op_bne = 5
let op_blez = 6
let op_bgtz = 7
let op_addi = 8
let op_addiu = 9
let op_slti = 10
let op_sltiu = 11
let op_andi = 12
let op_ori = 13
let op_xori = 14
let op_lui = 15
let op_cop0 = 16
let op_cop1 = 17
let op_lb = 32
let op_lh = 33
let op_lw = 35
let op_lbu = 36
let op_lhu = 37
let op_sb = 40
let op_sh = 41
let op_sw = 43
let op_cache = 47
let op_ldc1 = 53
let op_sdc1 = 61

(* SPECIAL functs *)
let f_sll = 0
let f_srl = 2
let f_sra = 3
let f_sllv = 4
let f_srlv = 6
let f_srav = 7
let f_jr = 8
let f_jalr = 9
let f_syscall = 12
let f_break = 13
let f_hcall = 15
let f_mul = 24
let f_mulh = 25
let f_div = 26
let f_rem = 27
let f_add = 32
let f_addu = 33
let f_sub = 34
let f_subu = 35
let f_and = 36
let f_or = 37
let f_xor = 38
let f_nor = 39
let f_slt = 42
let f_sltu = 43

(* COP1 fmt-D functs *)
let fd_add = 0
let fd_sub = 1
let fd_mul = 2
let fd_div = 3
let fd_abs = 5
let fd_mov = 6
let fd_neg = 7
let fd_trunc = 13
let fd_cvtdw = 33
let fd_ceq = 50
let fd_clt = 60
let fd_cle = 62

let alu_funct : Insn.alu -> int = function
  | ADD -> f_add | ADDU -> f_addu | SUB -> f_sub | SUBU -> f_subu
  | AND -> f_and | OR -> f_or | XOR -> f_xor | NOR -> f_nor
  | SLT -> f_slt | SLTU -> f_sltu | SLLV -> f_sllv | SRLV -> f_srlv
  | SRAV -> f_srav | MUL -> f_mul | MULH -> f_mulh | DIV -> f_div
  | REM -> f_rem

let shift_funct : Insn.shift -> int = function
  | SLL -> f_sll | SRL -> f_srl | SRA -> f_sra

let alui_op : Insn.alui -> int = function
  | ADDI -> op_addi | ADDIU -> op_addiu | SLTI -> op_slti | SLTIU -> op_sltiu
  | ANDI -> op_andi | ORI -> op_ori | XORI -> op_xori

let alui_signed : Insn.alui -> bool = function
  | ADDI | ADDIU | SLTI | SLTIU -> true
  | ANDI | ORI | XORI -> false

let cp0_num : Insn.cp0 -> int = function
  | C0_index -> 0 | C0_random -> 1 | C0_entrylo -> 2 | C0_context -> 4
  | C0_badvaddr -> 8 | C0_count -> 9 | C0_entryhi -> 10 | C0_status -> 12
  | C0_cause -> 13 | C0_epc -> 14 | C0_prid -> 15

let cp0_of_num = function
  | 0 -> Insn.C0_index | 1 -> C0_random | 2 -> C0_entrylo | 4 -> C0_context
  | 8 -> C0_badvaddr | 9 -> C0_count | 10 -> C0_entryhi | 12 -> C0_status
  | 13 -> C0_cause | 14 -> C0_epc | 15 -> C0_prid
  | n -> err "unknown cp0 register %d" n

let fop_funct : Insn.fop -> int = function
  | FADD -> fd_add | FSUB -> fd_sub | FMUL -> fd_mul | FDIV -> fd_div
  | FABS -> fd_abs | FNEG -> fd_neg | FMOV -> fd_mov
  | CVTDW -> fd_cvtdw | TRUNCWD -> fd_trunc

let fcond_funct : Insn.fcond -> int = function
  | FEQ -> fd_ceq | FLT -> fd_clt | FLE -> fd_cle

let rtype ~rs ~rt ~rd ~sa ~funct =
  (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11) lor (sa lsl 6) lor funct

let itype ~op ~rs ~rt ~imm =
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land mask16)

let imm_value what = function
  | Insn.Imm n -> n
  | Insn.Lo s | Insn.Hi s -> err "%s: unresolved symbol %S" what s

let branch_imm ~pc target =
  match target with
  | Insn.Sym s -> err "branch: unresolved symbol %S" s
  | Insn.Abs a ->
    if a land 3 <> 0 then err "branch target 0x%x not word aligned" a;
    let off = (a - (pc + 4)) asr 2 in
    check_signed16 "branch offset" off;
    off

let jump_index ~pc target =
  match target with
  | Insn.Sym s -> err "jump: unresolved symbol %S" s
  | Insn.Abs a ->
    if a land 3 <> 0 then err "jump target 0x%x not word aligned" a;
    if (a land 0xF0000000) <> ((pc + 4) land 0xF0000000) then
      err "jump target 0x%x outside current 256MB region of pc 0x%x" a pc;
    (a lsr 2) land 0x3FFFFFF

let load_op : Insn.width -> int = function
  | B -> op_lb | BU -> op_lbu | H -> op_lh | HU -> op_lhu | W -> op_lw

let store_op : Insn.width -> int = function
  | B | BU -> op_sb
  | H | HU -> op_sh
  | W -> op_sw

let encode ~pc (i : Insn.t) =
  let w =
    match i with
    | Alu (op, rd, rs, rt) -> rtype ~rs ~rt ~rd ~sa:0 ~funct:(alu_funct op)
    | Alui (op, rt, rs, im) ->
      let v = imm_value "alui" im in
      if alui_signed op then check_signed16 "alui" v
      else check_unsigned16 "alui" v;
      itype ~op:(alui_op op) ~rs ~rt ~imm:v
    | Shift (op, rd, rt, sa) ->
      if sa < 0 || sa > 31 then err "shift amount %d out of range" sa;
      rtype ~rs:0 ~rt ~rd ~sa ~funct:(shift_funct op)
    | Lui (rt, im) ->
      let v = imm_value "lui" im in
      check_unsigned16 "lui" v;
      itype ~op:op_lui ~rs:0 ~rt ~imm:v
    | Load (w, rt, base, off) ->
      let v = imm_value "load" off in
      check_signed16 "load offset" v;
      itype ~op:(load_op w) ~rs:base ~rt ~imm:v
    | Store (w, rt, base, off) ->
      let v = imm_value "store" off in
      check_signed16 "store offset" v;
      itype ~op:(store_op w) ~rs:base ~rt ~imm:v
    | Fload (ft, base, off) ->
      let v = imm_value "l.d" off in
      check_signed16 "l.d offset" v;
      itype ~op:op_ldc1 ~rs:base ~rt:ft ~imm:v
    | Fstore (ft, base, off) ->
      let v = imm_value "s.d" off in
      check_signed16 "s.d offset" v;
      itype ~op:op_sdc1 ~rs:base ~rt:ft ~imm:v
    | Beq (rs, rt, t) -> itype ~op:op_beq ~rs ~rt ~imm:(branch_imm ~pc t)
    | Bne (rs, rt, t) -> itype ~op:op_bne ~rs ~rt ~imm:(branch_imm ~pc t)
    | Blez (rs, t) -> itype ~op:op_blez ~rs ~rt:0 ~imm:(branch_imm ~pc t)
    | Bgtz (rs, t) -> itype ~op:op_bgtz ~rs ~rt:0 ~imm:(branch_imm ~pc t)
    | Bltz (rs, t) -> itype ~op:op_regimm ~rs ~rt:0 ~imm:(branch_imm ~pc t)
    | Bgez (rs, t) -> itype ~op:op_regimm ~rs ~rt:1 ~imm:(branch_imm ~pc t)
    | J t -> (op_j lsl 26) lor jump_index ~pc t
    | Jal t -> (op_jal lsl 26) lor jump_index ~pc t
    | Jr rs -> rtype ~rs ~rt:0 ~rd:0 ~sa:0 ~funct:f_jr
    | Jalr (rd, rs) -> rtype ~rs ~rt:0 ~rd ~sa:0 ~funct:f_jalr
    | Syscall -> rtype ~rs:0 ~rt:0 ~rd:0 ~sa:0 ~funct:f_syscall
    | Break code ->
      if code < 0 || code >= 1 lsl 20 then err "break code %d out of range" code;
      (code lsl 6) lor f_break
    | Hcall code ->
      if code < 0 || code >= 1 lsl 20 then err "hcall code %d out of range" code;
      (code lsl 6) lor f_hcall
    | Mfc0 (rt, c) -> itype ~op:op_cop0 ~rs:0 ~rt ~imm:(cp0_num c lsl 11)
    | Mtc0 (rt, c) -> itype ~op:op_cop0 ~rs:4 ~rt ~imm:(cp0_num c lsl 11)
    | Tlbr -> (op_cop0 lsl 26) lor (16 lsl 21) lor 1
    | Tlbwi -> (op_cop0 lsl 26) lor (16 lsl 21) lor 2
    | Tlbwr -> (op_cop0 lsl 26) lor (16 lsl 21) lor 6
    | Tlbp -> (op_cop0 lsl 26) lor (16 lsl 21) lor 8
    | Rfe -> (op_cop0 lsl 26) lor (16 lsl 21) lor 16
    | Mfc1 (rt, fs) -> itype ~op:op_cop1 ~rs:0 ~rt ~imm:(fs lsl 11)
    | Mtc1 (rt, fs) -> itype ~op:op_cop1 ~rs:4 ~rt ~imm:(fs lsl 11)
    | Bc1f t -> itype ~op:op_cop1 ~rs:8 ~rt:0 ~imm:(branch_imm ~pc t)
    | Bc1t t -> itype ~op:op_cop1 ~rs:8 ~rt:1 ~imm:(branch_imm ~pc t)
    | Fop (op, fd, fs, ft) ->
      (op_cop1 lsl 26) lor (17 lsl 21) lor (ft lsl 16) lor (fs lsl 11)
      lor (fd lsl 6) lor fop_funct op
    | Fcmp (c, fs, ft) ->
      (op_cop1 lsl 26) lor (17 lsl 21) lor (ft lsl 16) lor (fs lsl 11)
      lor fcond_funct c
    | Cache (cop, base, off) ->
      let v = imm_value "cache" off in
      check_signed16 "cache offset" v;
      itype ~op:op_cache ~rs:base ~rt:cop ~imm:v
  in
  w land mask32

let decode ~pc w =
  let op = (w lsr 26) land 0x3F in
  let rs = (w lsr 21) land 0x1F in
  let rt = (w lsr 16) land 0x1F in
  let rd = (w lsr 11) land 0x1F in
  let sa = (w lsr 6) land 0x1F in
  let funct = w land 0x3F in
  let imm_u = w land mask16 in
  let imm_s = signed16 w in
  let btarget = Insn.Abs (pc + 4 + (imm_s lsl 2)) in
  let jtarget =
    Insn.Abs (((pc + 4) land 0xF0000000) lor ((w land 0x3FFFFFF) lsl 2))
  in
  match op with
  | 0 -> (
    match funct with
    | f when f = f_sll -> Insn.Shift (SLL, rd, rt, sa)
    | f when f = f_srl -> Shift (SRL, rd, rt, sa)
    | f when f = f_sra -> Shift (SRA, rd, rt, sa)
    | f when f = f_jr -> Jr rs
    | f when f = f_jalr -> Jalr (rd, rs)
    | f when f = f_syscall -> Syscall
    | f when f = f_break -> Break ((w lsr 6) land 0xFFFFF)
    | f when f = f_hcall -> Hcall ((w lsr 6) land 0xFFFFF)
    | f when f = f_sllv -> Alu (SLLV, rd, rs, rt)
    | f when f = f_srlv -> Alu (SRLV, rd, rs, rt)
    | f when f = f_srav -> Alu (SRAV, rd, rs, rt)
    | f when f = f_mul -> Alu (MUL, rd, rs, rt)
    | f when f = f_mulh -> Alu (MULH, rd, rs, rt)
    | f when f = f_div -> Alu (DIV, rd, rs, rt)
    | f when f = f_rem -> Alu (REM, rd, rs, rt)
    | f when f = f_add -> Alu (ADD, rd, rs, rt)
    | f when f = f_addu -> Alu (ADDU, rd, rs, rt)
    | f when f = f_sub -> Alu (SUB, rd, rs, rt)
    | f when f = f_subu -> Alu (SUBU, rd, rs, rt)
    | f when f = f_and -> Alu (AND, rd, rs, rt)
    | f when f = f_or -> Alu (OR, rd, rs, rt)
    | f when f = f_xor -> Alu (XOR, rd, rs, rt)
    | f when f = f_nor -> Alu (NOR, rd, rs, rt)
    | f when f = f_slt -> Alu (SLT, rd, rs, rt)
    | f when f = f_sltu -> Alu (SLTU, rd, rs, rt)
    | f -> err "decode: bad SPECIAL funct %d (word 0x%08x at 0x%x)" f w pc)
  | 1 -> (
    match rt with
    | 0 -> Bltz (rs, btarget)
    | 1 -> Bgez (rs, btarget)
    | _ -> err "decode: bad REGIMM rt %d" rt)
  | 2 -> J jtarget
  | 3 -> Jal jtarget
  | 4 -> Beq (rs, rt, btarget)
  | 5 -> Bne (rs, rt, btarget)
  | 6 -> Blez (rs, btarget)
  | 7 -> Bgtz (rs, btarget)
  | 8 -> Alui (ADDI, rt, rs, Imm imm_s)
  | 9 -> Alui (ADDIU, rt, rs, Imm imm_s)
  | 10 -> Alui (SLTI, rt, rs, Imm imm_s)
  | 11 -> Alui (SLTIU, rt, rs, Imm imm_s)
  | 12 -> Alui (ANDI, rt, rs, Imm imm_u)
  | 13 -> Alui (ORI, rt, rs, Imm imm_u)
  | 14 -> Alui (XORI, rt, rs, Imm imm_u)
  | 15 -> Lui (rt, Imm imm_u)
  | 16 -> (
    match rs with
    | 0 -> Mfc0 (rt, cp0_of_num rd)
    | 4 -> Mtc0 (rt, cp0_of_num rd)
    | 16 -> (
      match funct with
      | 1 -> Tlbr
      | 2 -> Tlbwi
      | 6 -> Tlbwr
      | 8 -> Tlbp
      | 16 -> Rfe
      | f -> err "decode: bad COP0 funct %d" f)
    | _ -> err "decode: bad COP0 rs %d" rs)
  | 17 -> (
    match rs with
    | 0 -> Mfc1 (rt, rd)
    | 4 -> Mtc1 (rt, rd)
    | 8 -> if rt = 0 then Bc1f btarget else Bc1t btarget
    | 17 -> (
      let ft = rt and fs = rd and fd = sa in
      match funct with
      | f when f = fd_add -> Fop (FADD, fd, fs, ft)
      | f when f = fd_sub -> Fop (FSUB, fd, fs, ft)
      | f when f = fd_mul -> Fop (FMUL, fd, fs, ft)
      | f when f = fd_div -> Fop (FDIV, fd, fs, ft)
      | f when f = fd_abs -> Fop (FABS, fd, fs, ft)
      | f when f = fd_mov -> Fop (FMOV, fd, fs, ft)
      | f when f = fd_neg -> Fop (FNEG, fd, fs, ft)
      | f when f = fd_cvtdw -> Fop (CVTDW, fd, fs, ft)
      | f when f = fd_trunc -> Fop (TRUNCWD, fd, fs, ft)
      | f when f = fd_ceq -> Fcmp (FEQ, fs, ft)
      | f when f = fd_clt -> Fcmp (FLT, fs, ft)
      | f when f = fd_cle -> Fcmp (FLE, fs, ft)
      | f -> err "decode: bad COP1 funct %d" f)
    | _ -> err "decode: bad COP1 rs %d" rs)
  | 32 -> Load (B, rt, rs, Imm imm_s)
  | 33 -> Load (H, rt, rs, Imm imm_s)
  | 35 -> Load (W, rt, rs, Imm imm_s)
  | 36 -> Load (BU, rt, rs, Imm imm_s)
  | 37 -> Load (HU, rt, rs, Imm imm_s)
  | 40 -> Store (B, rt, rs, Imm imm_s)
  | 41 -> Store (H, rt, rs, Imm imm_s)
  | 43 -> Store (W, rt, rs, Imm imm_s)
  | 47 -> Cache (rt, rs, Imm imm_s)
  | 53 -> Fload (rt, rs, Imm imm_s)
  | 61 -> Fstore (rt, rs, Imm imm_s)
  | _ -> err "decode: bad opcode %d (word 0x%08x at 0x%x)" op w pc

(* Extract base register and signed offset from an encoded memory (or
   memory-shaped no-op) instruction word, as memtrace does when it partially
   decodes its delay slot.  Works for any I-type layout. *)
let base_offset_of_word w = ((w lsr 21) land 0x1F, signed16 w)
