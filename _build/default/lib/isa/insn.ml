(* Instruction set of the simulated machine.

   The ISA is MIPS-I-flavoured: 32-bit fixed-width instructions, one branch
   delay slot, software-managed TLB, coprocessor 0 for system control and
   coprocessor 1 for floating point.  Deviations from real MIPS-I (documented
   in DESIGN.md):
     - integer multiply/divide are three-operand register instructions with
       no HI/LO registers;
     - floating point registers are 16 double registers; FP loads/stores move
       a whole 8-byte double and count as a single memory reference;
     - [Mtc1] converts the signed integer in the GPR to a double, and [Mfc1]
       truncates, so no bit-level reinterpretation is needed;
     - [Hcall] is a privileged "hypercall" used by the kernel to talk to the
       host harness (analysis-mode trace consumption, shutdown, debug).

   Instructions carry symbolic operands ([Lo]/[Hi]/[Sym]) until link time;
   this is the symbol/relocation information that lets epoxie distinguish
   addresses from coincidentally similar constants (paper, section 3.2). *)

type alu =
  | ADD | ADDU | SUB | SUBU | AND | OR | XOR | NOR | SLT | SLTU
  | SLLV | SRLV | SRAV | MUL | MULH | DIV | REM

type alui = ADDI | ADDIU | SLTI | SLTIU | ANDI | ORI | XORI

type shift = SLL | SRL | SRA

type width = B | BU | H | HU | W

type fop = FADD | FSUB | FMUL | FDIV | FABS | FNEG | FMOV | CVTDW | TRUNCWD

type fcond = FEQ | FLT | FLE

type cp0 =
  | C0_index | C0_random | C0_entrylo | C0_context | C0_badvaddr
  | C0_count | C0_entryhi | C0_status | C0_cause | C0_epc | C0_prid

(* 16-bit immediate operand, possibly a symbolic half of an address. *)
type imm = Imm of int | Lo of string | Hi of string

(* Branch / jump target. *)
type target = Abs of int | Sym of string

type t =
  | Alu of alu * int * int * int          (* rd, rs, rt *)
  | Alui of alui * int * int * imm        (* rt, rs, imm *)
  | Shift of shift * int * int * int      (* rd, rt, sa *)
  | Lui of int * imm                      (* rt, imm *)
  | Load of width * int * int * imm       (* rt, base, offset *)
  | Store of width * int * int * imm      (* rt, base, offset *)
  | Fload of int * int * imm              (* ft, base, offset; 8 bytes *)
  | Fstore of int * int * imm             (* ft, base, offset; 8 bytes *)
  | Beq of int * int * target             (* rs, rt, target *)
  | Bne of int * int * target
  | Blez of int * target
  | Bgtz of int * target
  | Bltz of int * target
  | Bgez of int * target
  | J of target
  | Jal of target
  | Jr of int
  | Jalr of int * int                     (* rd, rs *)
  | Syscall
  | Break of int
  | Mfc0 of int * cp0                     (* rt <- cp0 *)
  | Mtc0 of int * cp0                     (* cp0 <- rt *)
  | Tlbr | Tlbwi | Tlbwr | Tlbp | Rfe
  | Mfc1 of int * int                     (* rt <- trunc(f[fs]) *)
  | Mtc1 of int * int                     (* f[fs] <- float(rt) *)
  | Fop of fop * int * int * int          (* fd, fs, ft *)
  | Fcmp of fcond * int * int             (* fs, ft; sets FP condition *)
  | Bc1t of target
  | Bc1f of target
  | Cache of int * int * imm              (* op, base, offset *)
  | Hcall of int                          (* host call, privileged *)

let nop = Shift (SLL, 0, 0, 0)

(* The special epoxie no-op: a load-immediate to $zero whose immediate field
   carries the number of trace words the basic block will generate. *)
let trace_count_nop n = Alui (ADDIU, 0, 0, Imm n)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let is_load = function Load _ | Fload _ -> true | _ -> false
let is_store = function Store _ | Fstore _ -> true | _ -> false
let is_mem i = is_load i || is_store i

(* Base register and offset of a memory instruction. *)
let mem_base_offset = function
  | Load (_, _, base, off) | Store (_, _, base, off)
  | Fload (_, base, off) | Fstore (_, base, off) -> Some (base, off)
  | _ -> None

let mem_bytes = function
  | Load (w, _, _, _) | Store (w, _, _, _) ->
    (match w with B | BU -> 1 | H | HU -> 2 | W -> 4)
  | Fload _ | Fstore _ -> 8
  | _ -> invalid_arg "Insn.mem_bytes: not a memory instruction"

(* Control transfers: every one of these has a single delay slot. *)
let is_control = function
  | Beq _ | Bne _ | Blez _ | Bgtz _ | Bltz _ | Bgez _
  | J _ | Jal _ | Jr _ | Jalr _ | Bc1t _ | Bc1f _ -> true
  | _ -> false

let branch_target = function
  | Beq (_, _, t) | Bne (_, _, t) | Blez (_, t) | Bgtz (_, t)
  | Bltz (_, t) | Bgez (_, t) | J t | Jal t | Bc1t t | Bc1f t -> Some t
  | _ -> None

(* Whether control can fall through past the delay slot (conditional
   branches and calls yes; unconditional jumps no). *)
let falls_through = function
  | J _ | Jr _ -> false
  | Jalr _ | Jal _ -> true (* returns eventually; next insn is a join point *)
  | _ -> true

(* ------------------------------------------------------------------ *)
(* Register uses and definitions (GPRs only), for epoxie's register
   stealing rewrite.                                                   *)

let uses = function
  | Alu (_, _, rs, rt) -> [ rs; rt ]
  | Alui (_, _, rs, _) -> [ rs ]
  | Shift (_, _, rt, _) -> [ rt ]
  | Lui _ -> []
  | Load (_, _, base, _) -> [ base ]
  | Store (_, rt, base, _) -> [ rt; base ]
  | Fload (_, base, _) -> [ base ]
  | Fstore (_, base, _) -> [ base ]
  | Beq (rs, rt, _) | Bne (rs, rt, _) -> [ rs; rt ]
  | Blez (rs, _) | Bgtz (rs, _) | Bltz (rs, _) | Bgez (rs, _) -> [ rs ]
  | J _ | Jal _ -> []
  | Jr rs -> [ rs ]
  | Jalr (_, rs) -> [ rs ]
  | Syscall | Break _ -> []
  | Mfc0 _ -> []
  | Mtc0 (rt, _) -> [ rt ]
  | Tlbr | Tlbwi | Tlbwr | Tlbp | Rfe -> []
  | Mfc1 _ -> []
  | Mtc1 (rt, _) -> [ rt ]
  | Fop _ | Fcmp _ | Bc1t _ | Bc1f _ -> []
  | Cache (_, base, _) -> [ base ]
  | Hcall _ -> []

let defs = function
  | Alu (_, rd, _, _) -> [ rd ]
  | Alui (_, rt, _, _) -> [ rt ]
  | Shift (_, rd, _, _) -> [ rd ]
  | Lui (rt, _) -> [ rt ]
  | Load (_, rt, _, _) -> [ rt ]
  | Jal _ -> [ 31 ]
  | Jalr (rd, _) -> [ rd ]
  | Mfc0 (rt, _) -> [ rt ]
  | Mfc1 (rt, _) -> [ rt ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let alu_name = function
  | ADD -> "add" | ADDU -> "addu" | SUB -> "sub" | SUBU -> "subu"
  | AND -> "and" | OR -> "or" | XOR -> "xor" | NOR -> "nor"
  | SLT -> "slt" | SLTU -> "sltu" | SLLV -> "sllv" | SRLV -> "srlv"
  | SRAV -> "srav" | MUL -> "mul" | MULH -> "mulh" | DIV -> "div"
  | REM -> "rem"

let alui_name = function
  | ADDI -> "addi" | ADDIU -> "addiu" | SLTI -> "slti" | SLTIU -> "sltiu"
  | ANDI -> "andi" | ORI -> "ori" | XORI -> "xori"

let shift_name = function SLL -> "sll" | SRL -> "srl" | SRA -> "sra"

let width_name ~store = function
  | B -> if store then "sb" else "lb"
  | BU -> if store then "sb" else "lbu"
  | H -> if store then "sh" else "lh"
  | HU -> if store then "sh" else "lhu"
  | W -> if store then "sw" else "lw"

let fop_name = function
  | FADD -> "add.d" | FSUB -> "sub.d" | FMUL -> "mul.d" | FDIV -> "div.d"
  | FABS -> "abs.d" | FNEG -> "neg.d" | FMOV -> "mov.d"
  | CVTDW -> "cvt.d.w" | TRUNCWD -> "trunc.w.d"

let fcond_name = function FEQ -> "c.eq.d" | FLT -> "c.lt.d" | FLE -> "c.le.d"

let cp0_name = function
  | C0_index -> "index" | C0_random -> "random" | C0_entrylo -> "entrylo"
  | C0_context -> "context" | C0_badvaddr -> "badvaddr" | C0_count -> "count"
  | C0_entryhi -> "entryhi" | C0_status -> "status" | C0_cause -> "cause"
  | C0_epc -> "epc" | C0_prid -> "prid"

let imm_to_string = function
  | Imm n -> string_of_int n
  | Lo s -> Printf.sprintf "%%lo(%s)" s
  | Hi s -> Printf.sprintf "%%hi(%s)" s

let target_to_string = function
  | Abs a -> Printf.sprintf "0x%x" a
  | Sym s -> s

let to_string i =
  let r = Reg.name in
  let f = Reg.fname in
  match i with
  | Alu (op, rd, rs, rt) ->
    Printf.sprintf "%-8s%s, %s, %s" (alu_name op) (r rd) (r rs) (r rt)
  | Alui (op, rt, rs, im) ->
    Printf.sprintf "%-8s%s, %s, %s" (alui_name op) (r rt) (r rs)
      (imm_to_string im)
  | Shift (op, rd, rt, sa) ->
    if i = nop then "nop"
    else Printf.sprintf "%-8s%s, %s, %d" (shift_name op) (r rd) (r rt) sa
  | Lui (rt, im) -> Printf.sprintf "%-8s%s, %s" "lui" (r rt) (imm_to_string im)
  | Load (w, rt, base, off) ->
    Printf.sprintf "%-8s%s, %s(%s)" (width_name ~store:false w) (r rt)
      (imm_to_string off) (r base)
  | Store (w, rt, base, off) ->
    Printf.sprintf "%-8s%s, %s(%s)" (width_name ~store:true w) (r rt)
      (imm_to_string off) (r base)
  | Fload (ft, base, off) ->
    Printf.sprintf "%-8s%s, %s(%s)" "l.d" (f ft) (imm_to_string off) (r base)
  | Fstore (ft, base, off) ->
    Printf.sprintf "%-8s%s, %s(%s)" "s.d" (f ft) (imm_to_string off) (r base)
  | Beq (rs, rt, t) ->
    Printf.sprintf "%-8s%s, %s, %s" "beq" (r rs) (r rt) (target_to_string t)
  | Bne (rs, rt, t) ->
    Printf.sprintf "%-8s%s, %s, %s" "bne" (r rs) (r rt) (target_to_string t)
  | Blez (rs, t) -> Printf.sprintf "%-8s%s, %s" "blez" (r rs) (target_to_string t)
  | Bgtz (rs, t) -> Printf.sprintf "%-8s%s, %s" "bgtz" (r rs) (target_to_string t)
  | Bltz (rs, t) -> Printf.sprintf "%-8s%s, %s" "bltz" (r rs) (target_to_string t)
  | Bgez (rs, t) -> Printf.sprintf "%-8s%s, %s" "bgez" (r rs) (target_to_string t)
  | J t -> Printf.sprintf "%-8s%s" "j" (target_to_string t)
  | Jal t -> Printf.sprintf "%-8s%s" "jal" (target_to_string t)
  | Jr rs -> Printf.sprintf "%-8s%s" "jr" (r rs)
  | Jalr (rd, rs) -> Printf.sprintf "%-8s%s, %s" "jalr" (r rd) (r rs)
  | Syscall -> "syscall"
  | Break n -> Printf.sprintf "%-8s%d" "break" n
  | Mfc0 (rt, c) -> Printf.sprintf "%-8s%s, $%s" "mfc0" (r rt) (cp0_name c)
  | Mtc0 (rt, c) -> Printf.sprintf "%-8s%s, $%s" "mtc0" (r rt) (cp0_name c)
  | Tlbr -> "tlbr"
  | Tlbwi -> "tlbwi"
  | Tlbwr -> "tlbwr"
  | Tlbp -> "tlbp"
  | Rfe -> "rfe"
  | Mfc1 (rt, fs) -> Printf.sprintf "%-8s%s, %s" "mfc1" (r rt) (f fs)
  | Mtc1 (rt, fs) -> Printf.sprintf "%-8s%s, %s" "mtc1" (r rt) (f fs)
  | Fop (op, fd, fs, ft) ->
    Printf.sprintf "%-8s%s, %s, %s" (fop_name op) (f fd) (f fs) (f ft)
  | Fcmp (c, fs, ft) ->
    Printf.sprintf "%-8s%s, %s" (fcond_name c) (f fs) (f ft)
  | Bc1t t -> Printf.sprintf "%-8s%s" "bc1t" (target_to_string t)
  | Bc1f t -> Printf.sprintf "%-8s%s" "bc1f" (target_to_string t)
  | Cache (op, base, off) ->
    Printf.sprintf "%-8s%d, %s(%s)" "cache" op (imm_to_string off) (r base)
  | Hcall n -> Printf.sprintf "%-8s%d" "hcall" n

(* An instruction is resolved when it has no symbolic operands and can be
   encoded to binary. *)
let imm_resolved = function Imm _ -> true | Lo _ | Hi _ -> false
let target_resolved = function Abs _ -> true | Sym _ -> false

let resolved = function
  | Alui (_, _, _, im) | Lui (_, im)
  | Load (_, _, _, im) | Store (_, _, _, im)
  | Fload (_, _, im) | Fstore (_, _, im)
  | Cache (_, _, im) -> imm_resolved im
  | Beq (_, _, t) | Bne (_, _, t) | Blez (_, t) | Bgtz (_, t)
  | Bltz (_, t) | Bgez (_, t) | J t | Jal t | Bc1t t | Bc1f t ->
    target_resolved t
  | _ -> true
