(** Linked executable images.

    Data and BSS are merged ([Dspace] regions are zero-filled), so loading
    is a matter of copying [text] and [data] to their bases. *)

type t = {
  name : string;
  entry : int;
  text_base : int;
  text : int array;            (** encoded instruction words *)
  text_insns : Insn.t array;   (** resolved ASTs, for tools *)
  data_base : int;
  data : Bytes.t;
  symbols : (string, int) Hashtbl.t;
  traced : bool;
      (** Ultrix marks traced programs with a flag in the executable
          image (paper §3.6). *)
}

val symbol : t -> string -> int
(** Raises [Failure] with the executable and symbol names if absent. *)

val symbol_opt : t -> string -> int option

val text_size_bytes : t -> int
val text_limit : t -> int
val data_limit : t -> int
val contains_text_addr : t -> int -> bool

val disassemble : ?lo:int -> ?hi:int -> t -> string
(** Human-readable listing with symbol annotations, optionally restricted
    to an address window. *)
