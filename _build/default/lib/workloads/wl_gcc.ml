(* gcc: "the GNU C compiler translating a preprocessed source file".

   gcc's defining traits in the paper's tables are the largest text
   segment of the workloads and heavy kernel interaction (it has by far
   the largest Ultrix TLB-miss count after eqntott/compress/tomcatv).

   The synthetic compiler front end: tokenize the source (byte loop),
   build an IR of heap-allocated expression nodes (sbrk), then run a
   sequence of sixteen distinct "passes" over the IR — each a separate
   generated function with its own loop, giving the binary a large,
   sparsely-reused text footprint — and finally write "assembly" output
   to a file. *)

open Systrace_isa
open Systrace_kernel

let name = "gcc"

let source =
  let b = Buffer.create 2048 in
  let r = ref 3 in
  for _ = 1 to 300 do
    r := ((!r * 75) + 74) mod 65537;
    Buffer.add_string b
      (match !r mod 6 with
      | 0 -> "x=y+z;"
      | 1 -> "w=x*3;"
      | 2 -> "if(x){y=z;}"
      | 3 -> "f(x,y);"
      | 4 -> "while(w){w=w-1;}"
      | _ -> "z=(x+y)*(z+w);")
  done;
  Buffer.contents b

let files =
  [
    { Builder.fname = "gcc.in"; data = source; writable_bytes = 0 };
    { Builder.fname = "gcc.out"; data = ""; writable_bytes = 16384 };
  ]

let npasses = 16

let program () : Builder.program =
  let a = Asm.create "gcc" in
  let open Asm in
  (* Node: [kind; value; next] = 12 bytes, allocated from the heap. *)
  (* pass_k: walk the node list, transform kind/value in a pass-specific
     way. Each pass is a distinct function body: text bulk. *)
  for k = 0 to npasses - 1 do
    func a (Printf.sprintf "pass%d" k) ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
        la a Reg.t0 "$irhead";
        lw a Reg.t0 0 Reg.t0;
        li a Reg.s0 0;
        label a (Printf.sprintf "$p%d_loop" k);
        beqz a Reg.t0 (Printf.sprintf "$p%d_done" k);
        nop a;
        lw a Reg.t1 0 Reg.t0;             (* kind *)
        lw a Reg.t2 4 Reg.t0;             (* value *)
        (* pass-specific transformation: distinct constants/shifts keep
           the code bodies different *)
        addiu a Reg.t3 Reg.t1 k;
        andi a Reg.t3 Reg.t3 7;
        sll a Reg.t4 Reg.t2 (k land 3);
        xori a Reg.t4 Reg.t4 (257 * (k + 1) land 0xFFFF);
        addu a Reg.t4 Reg.t4 Reg.t3;
        (match k mod 4 with
        | 0 ->
          andi a Reg.t4 Reg.t4 0x7FFF;
          addiu a Reg.t3 Reg.t3 1
        | 1 ->
          srl a Reg.t4 Reg.t4 1;
          xori a Reg.t3 Reg.t3 3
        | 2 ->
          addu a Reg.t4 Reg.t4 Reg.t2;
          andi a Reg.t3 Reg.t3 5
        | _ ->
          subu a Reg.t4 Reg.t4 Reg.t1;
          ori a Reg.t3 Reg.t3 2);
        sw a Reg.t3 0 Reg.t0;
        sw a Reg.t4 4 Reg.t0;
        addu a Reg.s0 Reg.s0 Reg.t4;
        lw a Reg.t0 8 Reg.t0;             (* next *)
        j_ a (Printf.sprintf "$p%d_loop" k);
        label a (Printf.sprintf "$p%d_done" k);
        move a Reg.v0 Reg.s0)
  done;
  (* alloc_node(kind, value): bump allocator over sbrk'd heap *)
  func a "alloc_node" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      move a Reg.s0 Reg.a0;
      move a Reg.s1 Reg.a1;
      la a Reg.t0 "$heap_ptr";
      lw a Reg.t1 0 Reg.t0;
      bnez a Reg.t1 "$have_heap";
      nop a;
      (* first call: sbrk a heap region *)
      li a Reg.a0 65536;
      jal a "u_sbrk";
      la a Reg.t0 "$heap_ptr";
      move a Reg.t1 Reg.v0;
      label a "$have_heap";
      addiu a Reg.t2 Reg.t1 12;
      sw a Reg.t2 0 Reg.t0;
      sw a Reg.s0 0 Reg.t1;
      sw a Reg.s1 4 Reg.t1;
      sw a Reg.zero 8 Reg.t1;
      move a Reg.v0 Reg.t1);
  func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      la a Reg.a0 "$fin";
      jal a "u_open";
      move a Reg.a0 Reg.v0;
      la a Reg.a1 "$src";
      li a Reg.a2 4096;
      jal a "u_read";
      move a Reg.s0 Reg.v0;               (* source length *)
      (* tokenize: one IR node per character class run *)
      la a Reg.s1 "$src";
      addu a Reg.s2 Reg.s1 Reg.s0;
      li a Reg.s3 0;                      (* previous node *)
      label a "$tok";
      sltu a Reg.t0 Reg.s1 Reg.s2;
      beqz a Reg.t0 "$passes";
      nop a;
      lbu a Reg.a0 0 Reg.s1;
      andi a Reg.a0 Reg.a0 7;             (* token kind *)
      lbu a Reg.a1 0 Reg.s1;
      jal a "alloc_node";
      (* chain *)
      beqz a Reg.s3 "$tok_first";
      nop a;
      sw a Reg.v0 8 Reg.s3;
      j_ a "$tok_chain";
      label a "$tok_first";
      la a Reg.t1 "$irhead";
      sw a Reg.v0 0 Reg.t1;
      label a "$tok_chain";
      move a Reg.s3 Reg.v0;
      i a (Insn.J (Sym "$tok"));
      addiu a Reg.s1 Reg.s1 1;
      (* run the passes *)
      label a "$passes";
      li a Reg.s2 0;
      for k = 0 to npasses - 1 do
        jal a (Printf.sprintf "pass%d" k);
        addu a Reg.s2 Reg.s2 Reg.v0
      done;
      (* emit "assembly": value of every 8th node as decimal into outbuf *)
      la a Reg.a0 "$fout";
      jal a "u_open";
      move a Reg.s1 Reg.v0;
      move a Reg.a0 Reg.s1;
      la a Reg.a1 "$src";
      li a Reg.a2 2048;
      jal a "u_write_all";
      move a Reg.a0 Reg.s2;
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$fin";
  asciiz a "gcc.in";
  dlabel a "$fout";
  asciiz a "gcc.out";
  dlabel a "$irhead";
  word a 0;
  dlabel a "$heap_ptr";
  word a 0;
  align a 4;
  dlabel a "$src";
  space a 4096;
  {
    Builder.pname = "gcc";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 24;
    is_server = false;
    notrace = false;
  }
