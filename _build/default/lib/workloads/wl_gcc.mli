(** The gcc workload of Table 1 (see the header comment in the .ml for
    how it mirrors its original's characteristic behaviour). *)

val name : string

val files : Systrace_kernel.Builder.file_spec list
(** Input (and output) files the program expects the booted system to
    carry. *)

val program : unit -> Systrace_kernel.Builder.program
