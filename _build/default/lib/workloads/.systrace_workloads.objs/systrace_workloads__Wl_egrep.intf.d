lib/workloads/wl_egrep.mli: Systrace_kernel
