lib/workloads/wl_yacc.ml: Asm Buffer Builder Char Insn Printf Reg Systrace_isa Systrace_kernel Userlib
