lib/workloads/suite.ml: Builder List Systrace_kernel Wl_compress Wl_doduc Wl_egrep Wl_eqntott Wl_espresso Wl_fpppp Wl_gcc Wl_lisp Wl_liv Wl_sed Wl_tomcatv Wl_yacc
