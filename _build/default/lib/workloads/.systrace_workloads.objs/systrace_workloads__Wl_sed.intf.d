lib/workloads/wl_sed.mli: Systrace_kernel
