lib/workloads/wl_espresso.ml: Asm Buffer Builder Char Insn Reg Systrace_isa Systrace_kernel Userlib
