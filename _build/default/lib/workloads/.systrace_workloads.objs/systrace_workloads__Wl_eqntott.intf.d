lib/workloads/wl_eqntott.mli: Systrace_kernel
