lib/workloads/wl_espresso.mli: Systrace_kernel
