lib/workloads/wl_eqntott.ml: Asm Builder Insn Reg Systrace_isa Systrace_kernel Userlib
