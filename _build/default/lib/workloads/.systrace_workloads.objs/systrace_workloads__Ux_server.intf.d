lib/workloads/ux_server.mli: Systrace_isa
