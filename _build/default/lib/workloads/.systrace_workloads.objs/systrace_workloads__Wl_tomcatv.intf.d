lib/workloads/wl_tomcatv.mli: Systrace_kernel
