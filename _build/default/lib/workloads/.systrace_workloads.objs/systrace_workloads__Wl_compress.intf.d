lib/workloads/wl_compress.mli: Systrace_kernel
