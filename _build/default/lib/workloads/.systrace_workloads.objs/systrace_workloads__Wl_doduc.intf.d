lib/workloads/wl_doduc.mli: Systrace_kernel
