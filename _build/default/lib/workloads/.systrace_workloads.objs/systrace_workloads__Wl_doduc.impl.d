lib/workloads/wl_doduc.ml: Asm Builder Insn Reg Systrace_isa Systrace_kernel Userlib
