lib/workloads/wl_lisp.mli: Systrace_kernel
