lib/workloads/wl_sed.ml: Asm Builder Char Insn Reg String Systrace_isa Systrace_kernel Userlib
