lib/workloads/wl_fpppp.ml: Asm Builder Reg Systrace_isa Systrace_kernel Userlib
