lib/workloads/wl_yacc.mli: Systrace_kernel
