lib/workloads/wl_tomcatv.ml: Asm Builder Insn Reg Systrace_isa Systrace_kernel Userlib
