lib/workloads/userlib.ml: Abi Asm Insn Objfile Reg Systrace_isa Systrace_kernel Systrace_tracing
