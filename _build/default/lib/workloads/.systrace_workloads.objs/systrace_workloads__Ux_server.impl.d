lib/workloads/ux_server.ml: Abi Asm Bytes Fun Insn Kcfg List Objfile Reg String Systrace_isa Systrace_kernel Systrace_tracing
