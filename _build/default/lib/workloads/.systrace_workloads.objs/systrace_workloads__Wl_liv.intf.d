lib/workloads/wl_liv.mli: Systrace_kernel
