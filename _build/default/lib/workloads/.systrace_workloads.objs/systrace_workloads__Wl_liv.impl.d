lib/workloads/wl_liv.ml: Asm Builder Insn Reg Systrace_isa Systrace_kernel Userlib
