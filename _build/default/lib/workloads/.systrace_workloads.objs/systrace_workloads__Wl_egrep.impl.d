lib/workloads/wl_egrep.ml: Array Asm Builder Char Insn Reg String Systrace_isa Systrace_kernel Userlib
