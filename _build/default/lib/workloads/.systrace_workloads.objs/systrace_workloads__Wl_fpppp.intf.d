lib/workloads/wl_fpppp.mli: Systrace_kernel
