lib/workloads/wl_compress.ml: Asm Buffer Builder Char Insn Reg Systrace_isa Systrace_kernel Userlib
