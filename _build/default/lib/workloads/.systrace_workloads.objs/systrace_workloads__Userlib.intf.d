lib/workloads/userlib.mli: Systrace_isa
