lib/workloads/suite.mli: Builder Systrace_kernel
