lib/workloads/wl_gcc.ml: Asm Buffer Builder Insn Printf Reg Systrace_isa Systrace_kernel Userlib
