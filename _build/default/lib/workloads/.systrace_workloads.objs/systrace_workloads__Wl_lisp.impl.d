lib/workloads/wl_lisp.ml: Asm Builder Insn Reg Systrace_isa Systrace_kernel Userlib
