lib/workloads/wl_gcc.mli: Systrace_kernel
