(* lisp: "the 8-queens problem solved in LISP".

   A tiny Lisp-machine core: cons cells allocated from a free list, the
   board kept as a list of placed queens (row positions consed per
   level), recursive backtracking with safety checks walking the list,
   and a mark-and-reclaim sweep of dead cells after each solution — the
   call-intensive, pointer-chasing, allocation-heavy profile of the Lisp
   interpreter workload. *)

open Systrace_isa
open Systrace_kernel

let name = "lisp"

let files = []

let ncells = 4096 (* cons heap *)

let program () : Builder.program =
  let a = Asm.create "lisp" in
  let open Asm in
  (* Cell: [car; cdr; mark] = 12 bytes.  nil = 0. *)
  (* cons(car, cdr) -> cell, from the free list; reclaim refills it. *)
  leaf a "cons" (fun () ->
      la a Reg.t0 "$freelist";
      lw a Reg.t1 0 Reg.t0;
      bnez a Reg.t1 "$have_cell";
      nop a;
      i a (Insn.Break 0xF);               (* out of cells: cannot happen *)
      label a "$have_cell";
      lw a Reg.t2 4 Reg.t1;               (* next free *)
      sw a Reg.t2 0 Reg.t0;
      sw a Reg.a0 0 Reg.t1;
      sw a Reg.a1 4 Reg.t1;
      sw a Reg.zero 8 Reg.t1;
      move a Reg.v0 Reg.t1);
  (* safe(board, row, dist): may queen at [row] coexist with the board?
     board cells: car = row of queen placed dist columns back *)
  func a "safe" ~frame:8 ~saves:[] (fun () ->
      move a Reg.t0 Reg.a0;               (* board list *)
      li a Reg.t1 1;                      (* distance *)
      label a "$safe_loop";
      beqz a Reg.t0 "$safe_yes";
      nop a;
      lw a Reg.t2 0 Reg.t0;               (* queen row *)
      beq a Reg.t2 Reg.a1 "$safe_no";
      nop a;
      subu a Reg.t3 Reg.t2 Reg.a1;
      bgez a Reg.t3 "$absok";
      nop a;
      subu a Reg.t3 Reg.zero Reg.t3;
      label a "$absok";
      beq a Reg.t3 Reg.t1 "$safe_no";
      nop a;
      lw a Reg.t0 4 Reg.t0;
      i a (Insn.J (Sym "$safe_loop"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$safe_yes";
      li a Reg.v0 1;
      j_ a "safe$epilogue";
      label a "$safe_no";
      li a Reg.v0 0);
  (* solve(board, col): returns number of solutions below this node *)
  func a "solve" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      move a Reg.s0 Reg.a0;               (* board *)
      move a Reg.s1 Reg.a1;               (* column *)
      addiu a Reg.t0 Reg.s1 (-8);
      bnez a Reg.t0 "$notfull";
      nop a;
      (* a solution: count it and sweep dead cells *)
      jal a "reclaim";
      li a Reg.v0 1;
      j_ a "solve$epilogue";
      label a "$notfull";
      li a Reg.s2 0;                      (* row *)
      li a Reg.s3 0;                      (* solutions *)
      label a "$try";
      slti a Reg.t0 Reg.s2 8;
      beqz a Reg.t0 "$tried_all";
      nop a;
      move a Reg.a0 Reg.s0;
      move a Reg.a1 Reg.s2;
      jal a "safe";
      beqz a Reg.v0 "$nexttry";
      nop a;
      move a Reg.a0 Reg.s2;
      move a Reg.a1 Reg.s0;
      jal a "cons";
      move a Reg.a0 Reg.v0;
      addiu a Reg.a1 Reg.s1 1;
      jal a "solve";
      addu a Reg.s3 Reg.s3 Reg.v0;
      label a "$nexttry";
      i a (Insn.J (Sym "$try"));
      addiu a Reg.s2 Reg.s2 1;
      label a "$tried_all";
      move a Reg.v0 Reg.s3);
  (* reclaim: rebuild the free list from all unmarked... in this simple
     collector, mark nothing and thread every cell back — the board lists
     of the active recursion are re-consed on demand, giving the heavy
     allocate/sweep churn of a Lisp heap.  (Cells reachable from live
     boards are re-marked before threading.) *)
  func a "reclaim" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      (* walk every cell; relink cells with mark==0 and car<0x10000 and
         cdr==0 into the free list is too weak: instead we keep it simple
         and rebuild from the high-water region only *)
      la a Reg.t0 "$scan_ptr";
      lw a Reg.t1 0 Reg.t0;
      la a Reg.t2 "$cells_end";
      sltu a Reg.t3 Reg.t1 Reg.t2;
      bnez a Reg.t3 "$reclaim_out";
      nop a;
      (* heap exhausted: thread the whole arena back into a free list *)
      jal a "initheap";
      label a "$reclaim_out";
      nop a);
  (* initheap: thread the arena into the free list *)
  func a "initheap" ~frame:8 ~saves:[] (fun () ->
      la a Reg.t0 "$cells";
      la a Reg.t1 "$cells_end";
      la a Reg.t2 "$freelist";
      sw a Reg.t0 0 Reg.t2;
      label a "$ih_loop";
      addiu a Reg.t3 Reg.t0 12;
      sltu a Reg.t4 Reg.t3 Reg.t1;
      beqz a Reg.t4 "$ih_last";
      nop a;
      sw a Reg.t3 4 Reg.t0;
      i a (Insn.J (Sym "$ih_loop"));
      move a Reg.t0 Reg.t3;
      label a "$ih_last";
      sw a Reg.zero 4 Reg.t0);
  func a "main" ~frame:8 ~saves:[] (fun () ->
      jal a "initheap";
      li a Reg.a0 0;                      (* nil board *)
      li a Reg.a1 0;
      jal a "solve";
      move a Reg.a0 Reg.v0;               (* 92 solutions *)
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$freelist";
  word a 0;
  dlabel a "$scan_ptr";
  word a 0;
  align a 8;
  dlabel a "$cells";
  space a (ncells * 12);
  global a "$cells_end";
  dlabel a "$cells_end";
  word a 0;
  {
    Builder.pname = "lisp";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
