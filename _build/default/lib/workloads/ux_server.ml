(* The Mach UX server: a user-level UNIX server in the spirit of CMU's
   UX39 (paper, §3.6 traced "Mach 3.0 microkernel and UNIX server").

   File system calls made by workload processes are forwarded by the
   kernel as messages; this server implements open/read/write on top of
   the kernel's raw block syscalls, with its own user-space block cache
   and per-client descriptor tables.  All of its activity — cache lookups,
   block copies, cross-address-space transfers — happens in user space
   through mapped memory, which is why the Mach column of Table 3 shows
   far more user TLB misses than Ultrix.

   The server is an ordinary traced program: it is instrumented by epoxie
   and gets its own per-process trace pages (allocated on first touch).

   The file plan (name/start block/size) is baked in at build time by the
   boot builder, which lays files out deterministically. *)

open Systrace_isa
open Systrace_tracing
open Systrace_kernel

let ncache = 16

(* fd table: per client (max_procs) x per fd: {file id, pos} *)
let fdt_stride = 8

let make ~file_plan () : Objfile.t =
  let a = Asm.create "uxserver" in
  let open Asm in
  (* -------------------------------------------------------------- *)
  (* Syscall wrappers specific to the server                         *)
  leaf a "sv_recv" (fun () ->
      li a Reg.v0 Kcfg.sys_server_recv;
      syscall a;
      (* the kernel delivered the request in a0-a3 *)
      la a Reg.t0 "$req";
      sw a Reg.a0 0 Reg.t0;
      sw a Reg.a1 4 Reg.t0;
      sw a Reg.a2 8 Reg.t0;
      sw a Reg.a3 12 Reg.t0);
  leaf a "sv_reply" (fun () ->
      li a Reg.v0 Kcfg.sys_server_reply;
      syscall a);
  leaf a "sv_disk_read" (fun () ->
      li a Reg.v0 Kcfg.sys_disk_read;
      syscall a);
  leaf a "sv_disk_write" (fun () ->
      li a Reg.v0 Kcfg.sys_disk_write;
      syscall a);
  leaf a "sv_copyout" (fun () ->
      li a Reg.v0 20;
      syscall a);
  leaf a "sv_copyin" (fun () ->
      li a Reg.v0 21;
      syscall a);
  (* -------------------------------------------------------------- *)
  (* ensure_cached(a0 = disk block) -> v0 = cache page address        *)
  func a "ensure_cached" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      move a Reg.s0 Reg.a0;
      la a Reg.t0 "$chdr";
      li a Reg.t1 0;
      label a "$ec_scan";
      slti a Reg.t2 Reg.t1 ncache;
      beqz a Reg.t2 "$ec_miss";
      nop a;
      lw a Reg.t3 0 Reg.t0;              (* cached block (-1 empty) *)
      bne a Reg.t3 Reg.s0 "$ec_next";
      nop a;
      (* hit: v0 = pages + i*4096 *)
      sll a Reg.t4 Reg.t1 12;
      la a Reg.v0 "$cpages";
      addu a Reg.v0 Reg.v0 Reg.t4;
      j_ a "ensure_cached$epilogue";
      label a "$ec_next";
      addiu a Reg.t1 Reg.t1 1;
      i a (Insn.J (Sym "$ec_scan"));
      addiu a Reg.t0 Reg.t0 4;
      label a "$ec_miss";
      (* round-robin victim *)
      la a Reg.t5 "$cnext";
      lw a Reg.s1 0 Reg.t5;
      addiu a Reg.t6 Reg.s1 1;
      slti a Reg.t7 Reg.t6 ncache;
      bnez a Reg.t7 "$ec_stor";
      nop a;
      li a Reg.t6 0;
      label a "$ec_stor";
      sw a Reg.t6 0 Reg.t5;
      (* read the block into the victim page *)
      sll a Reg.t4 Reg.s1 12;
      la a Reg.a1 "$cpages";
      addu a Reg.a1 Reg.a1 Reg.t4;
      move a Reg.a0 Reg.s0;
      jal a "sv_disk_read";
      (* update the header *)
      la a Reg.t0 "$chdr";
      sll a Reg.t4 Reg.s1 2;
      addu a Reg.t0 Reg.t0 Reg.t4;
      sw a Reg.s0 0 Reg.t0;
      sll a Reg.t4 Reg.s1 12;
      la a Reg.v0 "$cpages";
      addu a Reg.v0 Reg.v0 Reg.t4);
  (* -------------------------------------------------------------- *)
  (* file_lookup(a0 = name buffer) -> v0 = file index or -1           *)
  func a "file_lookup" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      move a Reg.s0 Reg.a0;
      la a Reg.t0 "$ftab";
      li a Reg.s1 0;
      label a "$fl_scan";
      slti a Reg.t1 Reg.s1 (List.length file_plan);
      beqz a Reg.t1 "$fl_fail";
      nop a;
      (* compare 16 bytes *)
      move a Reg.t2 Reg.s0;
      move a Reg.t3 Reg.t0;
      li a Reg.t4 16;
      label a "$fl_cmp";
      lbu a Reg.t5 0 Reg.t2;
      lbu a Reg.t6 0 Reg.t3;
      bne a Reg.t5 Reg.t6 "$fl_next";
      nop a;
      beqz a Reg.t5 "$fl_found";
      addiu a Reg.t2 Reg.t2 1;
      addiu a Reg.t4 Reg.t4 (-1);
      i a (Insn.Bgtz (Reg.t4, Sym "$fl_cmp"));
      addiu a Reg.t3 Reg.t3 1;
      j_ a "$fl_found";
      label a "$fl_next";
      addiu a Reg.s1 Reg.s1 1;
      la a Reg.t0 "$ftab";
      sll a Reg.t1 Reg.s1 2;
      addu a Reg.t1 Reg.t1 Reg.s1;       (* x5 *)
      sll a Reg.t1 Reg.t1 2;             (* x20: entry = 20 bytes? no: *)
      j_ a "$fl_scan0";
      label a "$fl_found";
      move a Reg.v0 Reg.s1;
      j_ a "file_lookup$epilogue";
      label a "$fl_fail";
      li a Reg.v0 (-1);
      j_ a "file_lookup$epilogue";
      (* recompute t0 from index: entry stride 24 *)
      label a "$fl_scan0";
      la a Reg.t0 "$ftab";
      sll a Reg.t1 Reg.s1 3;
      addu a Reg.t0 Reg.t0 Reg.t1;
      sll a Reg.t1 Reg.s1 4;
      addu a Reg.t0 Reg.t0 Reg.t1;       (* + idx*24 *)
      j_ a "$fl_scan");
  (* -------------------------------------------------------------- *)
  (* main server loop                                                *)
  func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      label a "$sv_loop";
      jal a "sv_recv";
      move a Reg.s0 Reg.v0;              (* client pid *)
      la a Reg.t0 "$req";
      lw a Reg.s1 0 Reg.t0;              (* syscall number *)
      (* dispatch *)
      addiu a Reg.t1 Reg.s1 (-Abi.sys_open);
      beqz a Reg.t1 "$sv_open";
      addiu a Reg.t1 Reg.s1 (-Abi.sys_read);
      beqz a Reg.t1 "$sv_read";
      addiu a Reg.t1 Reg.s1 (-Abi.sys_write);
      beqz a Reg.t1 "$sv_write";
      nop a;
      (* unknown: reply -1 *)
      move a Reg.a0 Reg.s0;
      li a Reg.a1 (-1);
      jal a "sv_reply";
      j_ a "$sv_loop";
      (* ---------------- open ---------------- *)
      label a "$sv_open";
      (* copy the path from the client *)
      move a Reg.a0 Reg.s0;
      la a Reg.t0 "$req";
      lw a Reg.a1 4 Reg.t0;              (* client path pointer *)
      la a Reg.a2 "$namebuf";
      li a Reg.a3 16;
      jal a "sv_copyin";
      la a Reg.a0 "$namebuf";
      jal a "file_lookup";
      bltz a Reg.v0 "$sv_open_fail";
      move a Reg.s1 Reg.v0;              (* file index *)
      (* allocate a client fd *)
      sll a Reg.t0 Reg.s0 6;             (* client * max_fds*8 *)
      la a Reg.t1 "$fdtab";
      addu a Reg.t1 Reg.t1 Reg.t0;
      li a Reg.t2 0;
      label a "$sv_ofd";
      slti a Reg.t3 Reg.t2 Kcfg.max_fds;
      beqz a Reg.t3 "$sv_open_fail";
      nop a;
      lw a Reg.t4 0 Reg.t1;
      bltz a Reg.t4 "$sv_otake";
      nop a;
      addiu a Reg.t2 Reg.t2 1;
      i a (Insn.J (Sym "$sv_ofd"));
      addiu a Reg.t1 Reg.t1 fdt_stride;
      label a "$sv_otake";
      sw a Reg.s1 0 Reg.t1;
      sw a Reg.zero 4 Reg.t1;
      move a Reg.a0 Reg.s0;
      addiu a Reg.a1 Reg.t2 3;           (* fd (console fds 0-2 reserved) *)
      jal a "sv_reply";
      j_ a "$sv_loop";
      label a "$sv_open_fail";
      move a Reg.a0 Reg.s0;
      li a Reg.a1 (-1);
      jal a "sv_reply";
      j_ a "$sv_loop";
      (* ---------------- read ---------------- *)
      label a "$sv_read";
      (* s1 = fd entry address; s2 = file entry; s3 = n *)
      la a Reg.t0 "$req";
      lw a Reg.t1 4 Reg.t0;              (* fd *)
      addiu a Reg.t1 Reg.t1 (-3);
      bltz a Reg.t1 "$sv_rfail";
      nop a;
      sll a Reg.t2 Reg.s0 6;
      la a Reg.t3 "$fdtab";
      addu a Reg.t3 Reg.t3 Reg.t2;
      sll a Reg.t4 Reg.t1 3;
      addu a Reg.s1 Reg.t3 Reg.t4;
      lw a Reg.t5 0 Reg.s1;              (* file index *)
      bltz a Reg.t5 "$sv_rfail";
      nop a;
      (* file entry = ftab + idx*24 + 16 (start/size words) *)
      sll a Reg.t6 Reg.t5 3;
      sll a Reg.t7 Reg.t5 4;
      addu a Reg.t6 Reg.t6 Reg.t7;
      la a Reg.t7 "$ftab";
      addu a Reg.s2 Reg.t6 Reg.t7;
      (* pos >= size -> EOF *)
      lw a Reg.t0 4 Reg.s1;              (* pos *)
      lw a Reg.t1 20 Reg.s2;             (* size *)
      sltu a Reg.t2 Reg.t0 Reg.t1;
      beqz a Reg.t2 "$sv_reof";
      nop a;
      (* block = start + pos>>12 *)
      lw a Reg.t3 16 Reg.s2;             (* start block *)
      srl a Reg.t4 Reg.t0 12;
      addu a Reg.a0 Reg.t3 Reg.t4;
      jal a "ensure_cached";
      move a Reg.s3 Reg.v0;              (* page *)
      (* n = min(len, 4096-off, size-pos) *)
      lw a Reg.t0 4 Reg.s1;
      andi a Reg.t1 Reg.t0 0xFFF;        (* off *)
      addu a Reg.s3 Reg.s3 Reg.t1;       (* src = page + off *)
      li a Reg.t2 4096;
      subu a Reg.t2 Reg.t2 Reg.t1;
      la a Reg.t3 "$req";
      lw a Reg.t4 12 Reg.t3;             (* len *)
      sltu a Reg.t5 Reg.t2 Reg.t4;
      beqz a Reg.t5 "$sv_rn1";
      nop a;
      move a Reg.t4 Reg.t2;
      label a "$sv_rn1";
      lw a Reg.t6 20 Reg.s2;
      subu a Reg.t6 Reg.t6 Reg.t0;
      sltu a Reg.t5 Reg.t6 Reg.t4;
      beqz a Reg.t5 "$sv_rn2";
      nop a;
      move a Reg.t4 Reg.t6;
      label a "$sv_rn2";
      (* copyout(client, ubuf, src, n) *)
      move a Reg.a0 Reg.s0;
      la a Reg.t3 "$req";
      lw a Reg.a1 8 Reg.t3;              (* client buffer *)
      move a Reg.a2 Reg.s3;
      move a Reg.a3 Reg.t4;
      sw a Reg.t4 0 Reg.sp;              (* spill n *)
      jal a "sv_copyout";
      lw a Reg.t4 0 Reg.sp;
      (* pos += n *)
      lw a Reg.t0 4 Reg.s1;
      addu a Reg.t0 Reg.t0 Reg.t4;
      sw a Reg.t0 4 Reg.s1;
      move a Reg.a0 Reg.s0;
      move a Reg.a1 Reg.t4;
      jal a "sv_reply";
      j_ a "$sv_loop";
      label a "$sv_reof";
      move a Reg.a0 Reg.s0;
      li a Reg.a1 0;
      jal a "sv_reply";
      j_ a "$sv_loop";
      label a "$sv_rfail";
      move a Reg.a0 Reg.s0;
      li a Reg.a1 (-1);
      jal a "sv_reply";
      j_ a "$sv_loop";
      (* ---------------- write (write-behind into the cache) -------- *)
      label a "$sv_write";
      la a Reg.t0 "$req";
      lw a Reg.t1 4 Reg.t0;
      addiu a Reg.t1 Reg.t1 (-3);
      bltz a Reg.t1 "$sv_rfail";
      nop a;
      sll a Reg.t2 Reg.s0 6;
      la a Reg.t3 "$fdtab";
      addu a Reg.t3 Reg.t3 Reg.t2;
      sll a Reg.t4 Reg.t1 3;
      addu a Reg.s1 Reg.t3 Reg.t4;
      lw a Reg.t5 0 Reg.s1;
      bltz a Reg.t5 "$sv_rfail";
      nop a;
      sll a Reg.t6 Reg.t5 3;
      sll a Reg.t7 Reg.t5 4;
      addu a Reg.t6 Reg.t6 Reg.t7;
      la a Reg.t7 "$ftab";
      addu a Reg.s2 Reg.t6 Reg.t7;
      lw a Reg.t0 4 Reg.s1;
      lw a Reg.t1 20 Reg.s2;
      sltu a Reg.t2 Reg.t0 Reg.t1;
      beqz a Reg.t2 "$sv_reof";
      nop a;
      lw a Reg.t3 16 Reg.s2;
      srl a Reg.t4 Reg.t0 12;
      addu a Reg.a0 Reg.t3 Reg.t4;
      jal a "ensure_cached";
      move a Reg.s3 Reg.v0;
      lw a Reg.t0 4 Reg.s1;
      andi a Reg.t1 Reg.t0 0xFFF;
      addu a Reg.s3 Reg.s3 Reg.t1;       (* dst = page + off *)
      li a Reg.t2 4096;
      subu a Reg.t2 Reg.t2 Reg.t1;
      la a Reg.t3 "$req";
      lw a Reg.t4 12 Reg.t3;
      sltu a Reg.t5 Reg.t2 Reg.t4;
      beqz a Reg.t5 "$sv_wn1";
      nop a;
      move a Reg.t4 Reg.t2;
      label a "$sv_wn1";
      lw a Reg.t6 20 Reg.s2;
      subu a Reg.t6 Reg.t6 Reg.t0;
      sltu a Reg.t5 Reg.t6 Reg.t4;
      beqz a Reg.t5 "$sv_wn2";
      nop a;
      move a Reg.t4 Reg.t6;
      label a "$sv_wn2";
      (* copyin(client, ubuf, dst, n) *)
      move a Reg.a0 Reg.s0;
      la a Reg.t3 "$req";
      lw a Reg.a1 8 Reg.t3;
      move a Reg.a2 Reg.s3;
      move a Reg.a3 Reg.t4;
      sw a Reg.t4 0 Reg.sp;
      jal a "sv_copyin";
      lw a Reg.t4 0 Reg.sp;
      lw a Reg.t0 4 Reg.s1;
      addu a Reg.t0 Reg.t0 Reg.t4;
      sw a Reg.t0 4 Reg.s1;
      move a Reg.a0 Reg.s0;
      move a Reg.a1 Reg.t4;
      jal a "sv_reply";
      j_ a "$sv_loop");
  (* -------------------------------------------------------------- *)
  (* Data                                                            *)
  dlabel a "$req";
  space a 16;
  dlabel a "$namebuf";
  space a 16;
  dlabel a "$cnext";
  word a 0;
  dlabel a "$chdr";
  List.iter (fun _ -> word a 0xFFFFFFFF) (List.init ncache Fun.id);
  dlabel a "$fdtab";
  (* file id -1, pos 0, per client x fd *)
  for _ = 1 to Kcfg.max_procs * Kcfg.max_fds do
    word a 0xFFFFFFFF;
    word a 0
  done;
  (* file table: name16 | start | size, like the kernel's *)
  dlabel a "$ftab";
  List.iter
    (fun (name, start, size) ->
      let b = Bytes.make 16 '\000' in
      String.iteri (fun i c -> if i < 15 then Bytes.set b i c) name;
      bytes a (Bytes.to_string b);
      word a start;
      word a size)
    file_plan;
  align a 4096;
  dlabel a "$cpages";
  space a (ncache * 4096);
  to_obj a
