(* sed: "the UNIX stream editor run three times over the same input file".

   A stream edit: read the input in 512-byte chunks, replace every
   occurrence of "ab" with "XY", write the result to an output file, three
   passes over the same file (the second and third hit the buffer cache).
   The shortest workload, just as in Table 1 — which is why its prediction
   error in Figure 3 is dominated by disk-latency approximations. *)

open Systrace_isa
open Systrace_kernel

let name = "sed"

let input =
  String.init 2048 (fun i ->
      (* periodic text with plenty of "ab" pairs *)
      match i mod 7 with
      | 0 -> 'a'
      | 1 -> 'b'
      | k -> Char.chr (Char.code 'a' + (((i / 7) + k) mod 26)))

let files =
  [
    { Builder.fname = "sed.in"; data = input; writable_bytes = 0 };
    { Builder.fname = "sed.out"; data = ""; writable_bytes = 4096 };
  ]

let program () : Builder.program =
  let a = Asm.create "sed" in
  let open Asm in
  func a "main" ~frame:8 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      li a Reg.s3 3;                       (* three runs *)
      label a "$pass";
      la a Reg.a0 "$fin";
      jal a "u_open";
      move a Reg.s0 Reg.v0;                (* in fd *)
      la a Reg.a0 "$fout";
      jal a "u_open";
      move a Reg.s1 Reg.v0;                (* out fd *)
      label a "$chunk";
      move a Reg.a0 Reg.s0;
      la a Reg.a1 "$buf";
      li a Reg.a2 512;
      jal a "u_read";
      blez a Reg.v0 "$eof";
      move a Reg.s2 Reg.v0;
      (* substitute "ab" -> "XY" in place *)
      la a Reg.t0 "$buf";
      addu a Reg.t1 Reg.t0 Reg.s2;
      addiu a Reg.t1 Reg.t1 (-1);
      label a "$scan";
      sltu a Reg.t2 Reg.t0 Reg.t1;
      beqz a Reg.t2 "$emit";
      nop a;
      lbu a Reg.t3 0 Reg.t0;
      addiu a Reg.t4 Reg.t3 (-97);         (* 'a' *)
      bnez a Reg.t4 "$next";
      nop a;
      lbu a Reg.t5 1 Reg.t0;
      addiu a Reg.t6 Reg.t5 (-98);         (* 'b' *)
      bnez a Reg.t6 "$next";
      nop a;
      li a Reg.t3 88;                      (* 'X' *)
      sb a Reg.t3 0 Reg.t0;
      li a Reg.t3 89;                      (* 'Y' *)
      sb a Reg.t3 1 Reg.t0;
      addiu a Reg.t0 Reg.t0 1;
      label a "$next";
      i a (Insn.J (Sym "$scan"));
      addiu a Reg.t0 Reg.t0 1;             (* delay slot: advance *)
      label a "$emit";
      (* write the chunk out (synchronous under Ultrix) *)
      move a Reg.a0 Reg.s1;
      la a Reg.a1 "$buf";
      move a Reg.a2 Reg.s2;
      jal a "u_write";
      j_ a "$chunk";
      label a "$eof";
      addiu a Reg.s3 Reg.s3 (-1);
      bgtz a Reg.s3 "$pass";
      nop a;
      (* print a short checksum of the last buffer *)
      la a Reg.t0 "$buf";
      lbu a Reg.a0 0 Reg.t0;
      lbu a Reg.t1 1 Reg.t0;
      addu a Reg.a0 Reg.a0 Reg.t1;
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$fin";
  asciiz a "sed.in";
  dlabel a "$fout";
  asciiz a "sed.out";
  dlabel a "$buf";
  space a 520;
  {
    Builder.pname = "sed";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
