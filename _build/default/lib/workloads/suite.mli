(** The experimental workload suite (Table 1), scaled ~100x down.  Each
    entry's program is an assembly implementation with the characteristic
    memory/FP/IO behaviour of its original. *)

open Systrace_kernel

type entry = {
  name : string;
  description : string;
  files : Builder.file_spec list;
  program : unit -> Builder.program;
}

val all : entry list

val find : string -> entry
(** Raises [Not_found]. *)
