(* User-space runtime library ("mini libc") shared by all workloads.

   Ordinary user code: it is instrumented along with the workloads, just
   as the real system traced libc.  Provides system-call wrappers, memory
   and string routines, decimal output, and a small LCG random generator.

   Calling convention: standard (args a0-a3, result v0, t-registers
   caller-saved). *)

open Systrace_isa
open Systrace_tracing

let make () : Objfile.t =
  let a = Asm.create "ulib" in
  let open Asm in
  let syscall_wrapper name number =
    leaf a name (fun () ->
        li a Reg.v0 number;
        syscall a)
  in
  syscall_wrapper "u_exit" Abi.sys_exit;
  syscall_wrapper "u_write" Abi.sys_write;
  syscall_wrapper "u_read" Abi.sys_read;
  syscall_wrapper "u_open" Abi.sys_open;
  syscall_wrapper "u_sbrk" Abi.sys_sbrk;
  syscall_wrapper "u_yield" Abi.sys_yield;
  syscall_wrapper "u_gettime" Abi.sys_gettime;
  syscall_wrapper "u_trace_ctl" Abi.sys_trace_ctl;
  (* u_thread_create(fn, sp): Mach thread in the caller's task; the kernel
     starts it at the _thread_start trampoline so the tracing registers
     are set up before instrumented code runs. *)
  leaf a "u_thread_create" (fun () ->
      move a Reg.a2 Reg.a0;
      move a Reg.a1 Reg.a1;
      la a Reg.a0 "_thread_start";
      li a Reg.v0 Systrace_kernel.Kcfg.sys_thread_create;
      syscall a);
  (* ---------------- memcpy(dst, src, n) ---------------- *)
  leaf a "memcpy" (fun () ->
      move a Reg.v0 Reg.a0;
      (* word loop when everything is aligned *)
      or_ a Reg.t0 Reg.a0 Reg.a1;
      or_ a Reg.t0 Reg.t0 Reg.a2;
      andi a Reg.t0 Reg.t0 3;
      bnez a Reg.t0 "$mc_bytes";
      addu a Reg.t1 Reg.a1 Reg.a2;       (* src end *)
      label a "$mc_wloop";
      beq a Reg.a1 Reg.t1 "$mc_done";
      nop a;
      lw a Reg.t2 0 Reg.a1;
      sw a Reg.t2 0 Reg.a0;
      addiu a Reg.a1 Reg.a1 4;
      i a (Insn.J (Sym "$mc_wloop"));
      addiu a Reg.a0 Reg.a0 4;
      label a "$mc_bytes";
      addu a Reg.t1 Reg.a1 Reg.a2;
      label a "$mc_bloop";
      beq a Reg.a1 Reg.t1 "$mc_done";
      nop a;
      lbu a Reg.t2 0 Reg.a1;
      sb a Reg.t2 0 Reg.a0;
      addiu a Reg.a1 Reg.a1 1;
      i a (Insn.J (Sym "$mc_bloop"));
      addiu a Reg.a0 Reg.a0 1;
      label a "$mc_done";
      nop a);
  (* ---------------- memset(dst, byte, n) ---------------- *)
  leaf a "memset" (fun () ->
      move a Reg.v0 Reg.a0;
      addu a Reg.t1 Reg.a0 Reg.a2;
      label a "$ms_loop";
      beq a Reg.a0 Reg.t1 "$ms_done";
      nop a;
      sb a Reg.a1 0 Reg.a0;
      i a (Insn.J (Sym "$ms_loop"));
      addiu a Reg.a0 Reg.a0 1;
      label a "$ms_done";
      nop a);
  (* ---------------- strlen(s) ---------------- *)
  leaf a "strlen" (fun () ->
      li a Reg.v0 0;
      label a "$sl_loop";
      lbu a Reg.t0 0 Reg.a0;
      beqz a Reg.t0 "$sl_done";
      addiu a Reg.a0 Reg.a0 1;
      i a (Insn.J (Sym "$sl_loop"));
      addiu a Reg.v0 Reg.v0 1;
      label a "$sl_done";
      nop a);
  (* ---------------- puts(s): write to fd 1 ---------------- *)
  func a "puts" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      move a Reg.s0 Reg.a0;
      jal a "strlen";
      move a Reg.a2 Reg.v0;
      move a Reg.a1 Reg.s0;
      li a Reg.a0 1;
      jal a "u_write");
  (* ---------------- print_uint(v): decimal to fd 1 ---------------- *)
  func a "print_uint" ~frame:24 ~saves:[] (fun () ->
      (* build digits backwards on the stack *)
      addiu a Reg.t0 Reg.sp 15;          (* cursor *)
      sb a Reg.zero 0 Reg.t0;
      move a Reg.t1 Reg.a0;
      label a "$pu_loop";
      li a Reg.t2 10;
      rem_ a Reg.t3 Reg.t1 Reg.t2;
      div_ a Reg.t1 Reg.t1 Reg.t2;
      addiu a Reg.t3 Reg.t3 48;
      addiu a Reg.t0 Reg.t0 (-1);
      sb a Reg.t3 0 Reg.t0;
      bnez a Reg.t1 "$pu_loop";
      nop a;
      (* write(1, t0, end-t0) *)
      li a Reg.a0 1;
      move a Reg.a1 Reg.t0;
      addiu a Reg.t4 Reg.sp 15;
      subu a Reg.a2 Reg.t4 Reg.t0;
      jal a "u_write");
  (* ---------------- u_write_all(fd, buf, len) ---------------- *)
  func a "u_write_all" ~frame:8 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      move a Reg.s0 Reg.a0;
      move a Reg.s1 Reg.a1;
      move a Reg.s2 Reg.a2;
      label a "$wa_loop";
      blez a Reg.s2 "$wa_done";
      nop a;
      move a Reg.a0 Reg.s0;
      move a Reg.a1 Reg.s1;
      move a Reg.a2 Reg.s2;
      jal a "u_write";
      blez a Reg.v0 "$wa_done";
      nop a;
      addu a Reg.s1 Reg.s1 Reg.v0;
      i a (Insn.J (Sym "$wa_loop"));
      subu a Reg.s2 Reg.s2 Reg.v0;
      label a "$wa_done";
      nop a);
  (* ---------------- u_rand(): 31-bit LCG ---------------- *)
  leaf a "u_rand" (fun () ->
      la a Reg.t0 "$rand_state";
      lw a Reg.t1 0 Reg.t0;
      li a Reg.t2 1103515245;
      mul a Reg.t1 Reg.t1 Reg.t2;
      addiu a Reg.t1 Reg.t1 12345;
      sw a Reg.t1 0 Reg.t0;
      srl a Reg.v0 Reg.t1 1);
  (* ---------------- u_srand(seed) ---------------- *)
  leaf a "u_srand" (fun () ->
      la a Reg.t0 "$rand_state";
      sw a Reg.a0 0 Reg.t0);
  dlabel a "$rand_state";
  word a 12345;
  to_obj a
