(* egrep: "the UNIX pattern search program run three times over an input
   file".

   Table-driven DFA matching, egrep's defining behaviour: a 4-state
   automaton for the pattern "abc[a-z]" runs over the file byte stream,
   one load of the byte plus one load of the transition table entry per
   character, counting matches. *)

open Systrace_isa
open Systrace_kernel

let name = "egrep"

let input =
  String.init 3072 (fun i ->
      match i mod 11 with
      | 0 -> 'a'
      | 1 -> 'b'
      | 2 -> if i mod 22 = 2 then 'c' else 'x'
      | k -> Char.chr (Char.code 'a' + ((i + k) mod 26)))

let files = [ { Builder.fname = "egrep.in"; data = input; writable_bytes = 0 } ]

(* DFA over byte classes: state x class -> state.  Classes: 'a'=1, 'b'=2,
   'c'=3, other-lowercase=4, other=0.  Accept when state 3 sees a
   lowercase letter. *)
let program () : Builder.program =
  let a = Asm.create "egrep" in
  let open Asm in
  func a "main" ~frame:8 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      li a Reg.s3 3;                        (* three runs *)
      li a Reg.s2 0;                        (* match count *)
      label a "$pass";
      la a Reg.a0 "$fname";
      jal a "u_open";
      move a Reg.s0 Reg.v0;
      label a "$chunk";
      move a Reg.a0 Reg.s0;
      la a Reg.a1 "$buf";
      li a Reg.a2 768;
      jal a "u_read";
      blez a Reg.v0 "$eof";
      la a Reg.t0 "$buf";
      addu a Reg.t1 Reg.t0 Reg.v0;
      li a Reg.t2 0;                        (* state *)
      label a "$match";
      beq a Reg.t0 Reg.t1 "$chunk";
      nop a;
      lbu a Reg.t3 0 Reg.t0;
      (* class lookup *)
      la a Reg.t4 "$classes";
      addu a Reg.t4 Reg.t4 Reg.t3;
      lbu a Reg.t4 0 Reg.t4;
      (* next = dfa[state*5 + class] *)
      sll a Reg.t5 Reg.t2 2;
      addu a Reg.t5 Reg.t5 Reg.t2;
      addu a Reg.t5 Reg.t5 Reg.t4;
      la a Reg.t6 "$dfa";
      addu a Reg.t6 Reg.t6 Reg.t5;
      lbu a Reg.t2 0 Reg.t6;
      (* state 4 = accept *)
      addiu a Reg.t6 Reg.t2 (-4);
      bnez a Reg.t6 "$adv";
      nop a;
      addiu a Reg.s2 Reg.s2 1;
      li a Reg.t2 0;
      label a "$adv";
      i a (Insn.J (Sym "$match"));
      addiu a Reg.t0 Reg.t0 1;
      label a "$eof";
      addiu a Reg.s3 Reg.s3 (-1);
      bgtz a Reg.s3 "$pass";
      nop a;
      move a Reg.a0 Reg.s2;
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$fname";
  asciiz a "egrep.in";
  (* byte -> class table *)
  dlabel a "$classes";
  bytes a
    (String.init 256 (fun c ->
         if c = Char.code 'a' then '\001'
         else if c = Char.code 'b' then '\002'
         else if c = Char.code 'c' then '\003'
         else if c >= Char.code 'a' && c <= Char.code 'z' then '\004'
         else '\000'));
  (* state x class transition table (5 columns per state) *)
  dlabel a "$dfa";
  bytes a
    (let tbl = [|
       (* state 0 *) 0; 1; 0; 0; 0;
       (* state 1 *) 0; 1; 2; 0; 0;
       (* state 2 *) 0; 1; 0; 3; 0;
       (* state 3: lowercase accepts *) 0; 4; 4; 4; 4;
       (* state 4 is consumed by the accept check *) 0; 0; 0; 0; 0;
     |] in
     String.init (Array.length tbl) (fun i -> Char.chr tbl.(i)));
  align a 4;
  dlabel a "$buf";
  space a 776;
  {
    Builder.pname = "egrep";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
