(* eqntott: "converts boolean equations to truth tables".

   The original's dominant behaviour is quicksorting large arrays of
   minterms — and it is the workload with by far the most TLB misses in
   Table 3.  We generate a large pseudo-random integer array (many pages,
   well beyond TLB reach), quicksort it with an explicit stack, verify
   the order, and print a checksum. *)

open Systrace_isa
open Systrace_kernel

let name = "eqntott"

let nelems = 49152 (* 192 KB = 48 pages of data *)

let files = []

let program () : Builder.program =
  let a = Asm.create "eqntott" in
  let open Asm in
  func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3 ] (fun () ->
      (* fill the array from the LCG *)
      la a Reg.s0 "$arr";
      li a Reg.s1 nelems;
      move a Reg.t0 Reg.s0;
      li a Reg.t1 12345;
      label a "$fill";
      blez a Reg.s1 "$sort";
      nop a;
      li a Reg.t2 1103515245;
      mul a Reg.t1 Reg.t1 Reg.t2;
      addiu a Reg.t1 Reg.t1 12345;
      srl a Reg.t3 Reg.t1 4;
      sw a Reg.t3 0 Reg.t0;
      addiu a Reg.t0 Reg.t0 4;
      i a (Insn.J (Sym "$fill"));
      addiu a Reg.s1 Reg.s1 (-1);
      (* iterative quicksort over [lo, hi] index pairs on $stk *)
      label a "$sort";
      la a Reg.s2 "$stk";                  (* stack pointer (word pairs) *)
      sw a Reg.zero 0 Reg.s2;              (* lo = 0 *)
      li a Reg.t0 (nelems - 1);
      sw a Reg.t0 4 Reg.s2;
      addiu a Reg.s2 Reg.s2 8;
      label a "$qloop";
      la a Reg.t0 "$stk";
      beq a Reg.s2 Reg.t0 "$check";
      nop a;
      addiu a Reg.s2 Reg.s2 (-8);
      lw a Reg.s0 0 Reg.s2;                (* lo *)
      lw a Reg.s1 4 Reg.s2;                (* hi *)
      slt a Reg.t0 Reg.s0 Reg.s1;
      beqz a Reg.t0 "$qloop";
      nop a;
      (* partition around a[hi] *)
      la a Reg.t0 "$arr";
      sll a Reg.t1 Reg.s1 2;
      addu a Reg.t1 Reg.t0 Reg.t1;
      lw a Reg.t2 0 Reg.t1;                (* pivot *)
      move a Reg.t3 Reg.s0;                (* i *)
      move a Reg.t4 Reg.s0;                (* j *)
      label a "$part";
      slt a Reg.t5 Reg.t4 Reg.s1;
      beqz a Reg.t5 "$swap_pivot";
      nop a;
      sll a Reg.t5 Reg.t4 2;
      addu a Reg.t5 Reg.t0 Reg.t5;
      lw a Reg.t6 0 Reg.t5;
      slt a Reg.t7 Reg.t6 Reg.t2;
      beqz a Reg.t7 "$part_next";
      nop a;
      (* swap a[i], a[j] *)
      sll a Reg.t7 Reg.t3 2;
      addu a Reg.t7 Reg.t0 Reg.t7;
      lw a Reg.a3 0 Reg.t7;
      sw a Reg.t6 0 Reg.t7;
      sw a Reg.a3 0 Reg.t5;
      addiu a Reg.t3 Reg.t3 1;
      label a "$part_next";
      i a (Insn.J (Sym "$part"));
      addiu a Reg.t4 Reg.t4 1;
      label a "$swap_pivot";
      (* swap a[i], a[hi] *)
      sll a Reg.t5 Reg.t3 2;
      addu a Reg.t5 Reg.t0 Reg.t5;
      lw a Reg.t6 0 Reg.t5;
      sw a Reg.t2 0 Reg.t5;
      sw a Reg.t6 0 Reg.t1;
      (* push (lo, i-1) and (i+1, hi) *)
      addiu a Reg.t6 Reg.t3 (-1);
      sw a Reg.s0 0 Reg.s2;
      sw a Reg.t6 4 Reg.s2;
      addiu a Reg.s2 Reg.s2 8;
      addiu a Reg.t6 Reg.t3 1;
      sw a Reg.t6 0 Reg.s2;
      sw a Reg.s1 4 Reg.s2;
      addiu a Reg.s2 Reg.s2 8;
      j_ a "$qloop";
      (* verify + checksum every 97th element *)
      label a "$check";
      la a Reg.t0 "$arr";
      li a Reg.t1 0;                       (* index *)
      li a Reg.s3 0;                       (* checksum *)
      li a Reg.t2 0;                       (* previous value *)
      li a Reg.s1 nelems;
      label a "$vloop";
      slt a Reg.t3 Reg.t1 Reg.s1;
      beqz a Reg.t3 "$out";
      nop a;
      sll a Reg.t3 Reg.t1 2;
      addu a Reg.t3 Reg.t0 Reg.t3;
      lw a Reg.t4 0 Reg.t3;
      sltu a Reg.t5 Reg.t4 Reg.t2;
      beqz a Reg.t5 "$inorder";
      nop a;
      (* out of order: report 0 *)
      li a Reg.a0 0;
      jal a "print_uint";
      li a Reg.v0 1;
      j_ a "main$epilogue";
      label a "$inorder";
      move a Reg.t2 Reg.t4;
      xor_ a Reg.s3 Reg.s3 Reg.t4;
      i a (Insn.J (Sym "$vloop"));
      addiu a Reg.t1 Reg.t1 97;
      label a "$out";
      move a Reg.a0 Reg.s3;
      jal a "print_uint";
      li a Reg.v0 0);
  align a 8;
  dlabel a "$arr";
  space a (nelems * 4);
  dlabel a "$stk";
  space a (2048 * 8);
  {
    Builder.pname = "eqntott";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
