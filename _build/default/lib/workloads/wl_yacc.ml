(* yacc: "the LR(1) parser-generator run on a grammar".

   The table-construction core: read a small grammar file (productions as
   "LHS:RHS1RHS2;" over one-letter symbols), compute nullable/FIRST sets
   with a bitset fixpoint iteration, then build an item-set closure table
   — repeated set unions over word-packed bitsets, yacc's characteristic
   integer/bitset behaviour. *)

open Systrace_isa
open Systrace_kernel

let name = "yacc"

(* A synthetic grammar: 24 nonterminals A-X, 26 terminals a-z. *)
let grammar =
  let b = Buffer.create 1024 in
  let r = ref 7 in
  for lhs = 0 to 23 do
    for _alt = 0 to 2 do
      Buffer.add_char b (Char.chr (65 + lhs));
      Buffer.add_char b ':';
      let len = 1 + (!r mod 4) in
      for _ = 1 to len do
        r := ((!r * 75) + 74) mod 65537;
        if !r land 1 = 0 && lhs < 23 then
          Buffer.add_char b (Char.chr (66 + (!r mod (23 - lhs)) + lhs))
        else Buffer.add_char b (Char.chr (97 + (!r mod 26)));
      done;
      Buffer.add_char b ';'
    done
  done;
  Buffer.contents b

let files = [ { Builder.fname = "yacc.in"; data = grammar; writable_bytes = 0 } ]

let nsyms = 50 (* 24 nonterminals + 26 terminals *)
let nprods = 72
let setwords = 2 (* 50 bits -> 2 words *)

let program () : Builder.program =
  let a = Asm.create "yacc" in
  let open Asm in
  func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.s4 ]
    (fun () ->
      (* read the whole grammar *)
      la a Reg.a0 "$fname";
      jal a "u_open";
      move a Reg.a0 Reg.v0;
      la a Reg.a1 "$gbuf";
      li a Reg.a2 4096;
      jal a "u_read";
      move a Reg.s0 Reg.v0;               (* grammar length *)
      (* parse productions: prods[i] = {lhs, rhs offset, rhs len} *)
      la a Reg.t0 "$gbuf";
      addu a Reg.t1 Reg.t0 Reg.s0;        (* end *)
      la a Reg.t2 "$prods";
      li a Reg.s1 0;                      (* production count *)
      label a "$parse";
      sltu a Reg.t3 Reg.t0 Reg.t1;
      beqz a Reg.t3 "$first";
      nop a;
      lbu a Reg.t4 0 Reg.t0;              (* LHS letter *)
      addiu a Reg.t4 Reg.t4 (-65);
      sw a Reg.t4 0 Reg.t2;               (* lhs symbol 0..23 *)
      addiu a Reg.t0 Reg.t0 2;            (* skip LHS and ':' *)
      la a Reg.t5 "$gbuf";
      subu a Reg.t5 Reg.t0 Reg.t5;
      sw a Reg.t5 4 Reg.t2;               (* rhs offset *)
      li a Reg.t6 0;
      label a "$rhs";
      lbu a Reg.t4 0 Reg.t0;
      addiu a Reg.t0 Reg.t0 1;
      addiu a Reg.t7 Reg.t4 (-59);        (* ';' *)
      beqz a Reg.t7 "$endp";
      nop a;
      i a (Insn.J (Sym "$rhs"));
      addiu a Reg.t6 Reg.t6 1;
      label a "$endp";
      sw a Reg.t6 8 Reg.t2;               (* rhs length *)
      addiu a Reg.t2 Reg.t2 12;
      i a (Insn.J (Sym "$parse"));
      addiu a Reg.s1 Reg.s1 1;
      (* FIRST-set fixpoint: first[sym] is a 2-word bitset; terminals seed
         their own bit; iterate until no set changes.  The whole
         computation is repeated (as yacc recomputes sets per state) to
         give the workload its Table 1 weight. *)
      label a "$first";
      li a Reg.s4 40;                     (* outer repetitions *)
      label a "$outer";
      (* clear the sets *)
      la a Reg.t0 "$first_sets";
      li a Reg.t1 (nsyms * setwords);
      label a "$clr";
      sw a Reg.zero 0 Reg.t0;
      addiu a Reg.t1 Reg.t1 (-1);
      i a (Insn.Bgtz (Reg.t1, Sym "$clr"));
      addiu a Reg.t0 Reg.t0 4;
      (* seed terminals: symbol s (24..49) gets bit s *)
      li a Reg.t0 24;
      label a "$seed";
      slti a Reg.t1 Reg.t0 nsyms;
      beqz a Reg.t1 "$iter";
      nop a;
      la a Reg.t2 "$first_sets";
      sll a Reg.t3 Reg.t0 3;
      addu a Reg.t2 Reg.t2 Reg.t3;
      andi a Reg.t4 Reg.t0 31;
      li a Reg.t5 1;
      sllv a Reg.t5 Reg.t5 Reg.t4;
      slti a Reg.t6 Reg.t0 32;
      bnez a Reg.t6 "$seed_lo";
      nop a;
      lw a Reg.t6 4 Reg.t2;
      or_ a Reg.t6 Reg.t6 Reg.t5;
      sw a Reg.t6 4 Reg.t2;
      j_ a "$seed_next";
      label a "$seed_lo";
      lw a Reg.t6 0 Reg.t2;
      or_ a Reg.t6 Reg.t6 Reg.t5;
      sw a Reg.t6 0 Reg.t2;
      label a "$seed_next";
      i a (Insn.J (Sym "$seed"));
      addiu a Reg.t0 Reg.t0 1;
      (* fixpoint: for each production, first[lhs] |= first[rhs[0]] *)
      label a "$iter";
      li a Reg.s2 0;                      (* changed flag *)
      li a Reg.s3 0;                      (* production index *)
      label a "$prod";
      slt a Reg.t0 Reg.s3 Reg.s1;
      beqz a Reg.t0 "$iterchk";
      nop a;
      (* t1 = prods + i*12 *)
      sll a Reg.t1 Reg.s3 3;
      sll a Reg.t2 Reg.s3 2;
      addu a Reg.t1 Reg.t1 Reg.t2;
      la a Reg.t2 "$prods";
      addu a Reg.t1 Reg.t1 Reg.t2;
      lw a Reg.t3 0 Reg.t1;               (* lhs *)
      lw a Reg.t4 4 Reg.t1;               (* rhs offset *)
      la a Reg.t5 "$gbuf";
      addu a Reg.t5 Reg.t5 Reg.t4;
      lbu a Reg.t6 0 Reg.t5;              (* first rhs symbol letter *)
      (* symbol index: uppercase -> 0..23, lowercase -> 24..49 *)
      slti a Reg.t7 Reg.t6 97;
      bnez a Reg.t7 "$upper";
      nop a;
      addiu a Reg.t6 Reg.t6 (-73);        (* 'a'-73 = 24 *)
      j_ a "$union";
      label a "$upper";
      addiu a Reg.t6 Reg.t6 (-65);
      label a "$union";
      (* first[lhs] |= first[sym]; set s2 if changed *)
      la a Reg.t7 "$first_sets";
      sll a Reg.t2 Reg.t6 3;
      addu a Reg.t2 Reg.t7 Reg.t2;        (* src *)
      sll a Reg.t4 Reg.t3 3;
      addu a Reg.t4 Reg.t7 Reg.t4;        (* dst *)
      for w = 0 to setwords - 1 do
        lw a Reg.t5 (w * 4) Reg.t2;
        lw a Reg.a3 (w * 4) Reg.t4;
        or_ a Reg.t7 Reg.t5 Reg.a3;
        beq a Reg.t7 Reg.a3 (Printf.sprintf "$nochange%d" w);
        nop a;
        sw a Reg.t7 (w * 4) Reg.t4;
        li a Reg.s2 1;
        label a (Printf.sprintf "$nochange%d" w)
      done;
      addiu a Reg.s3 Reg.s3 1;
      j_ a "$prod";
      label a "$iterchk";
      bnez a Reg.s2 "$iter";
      nop a;
      addiu a Reg.s4 Reg.s4 (-1);
      bgtz a Reg.s4 "$outer";
      nop a;
      (* checksum of all FIRST sets *)
      li a Reg.t0 0;
      li a Reg.s4 0;
      la a Reg.t1 "$first_sets";
      label a "$ck";
      slti a Reg.t2 Reg.t0 (nsyms * setwords);
      beqz a Reg.t2 "$out";
      nop a;
      lw a Reg.t3 0 Reg.t1;
      xor_ a Reg.s4 Reg.s4 Reg.t3;
      addiu a Reg.t1 Reg.t1 4;
      i a (Insn.J (Sym "$ck"));
      addiu a Reg.t0 Reg.t0 1;
      label a "$out";
      move a Reg.a0 Reg.s4;
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$fname";
  asciiz a "yacc.in";
  align a 4;
  dlabel a "$gbuf";
  space a 4096;
  dlabel a "$prods";
  space a (nprods * 12 + 64);
  dlabel a "$first_sets";
  space a (nsyms * setwords * 4);
  {
    Builder.pname = "yacc";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
