(* tomcatv: "a program that generates a vectorized mesh" (Fortran).

   Two N x N double meshes are relaxed iteratively: each sweep updates
   every interior point from its four neighbours, alternating row-major
   and column-major traversals.  The column-major sweeps stride by a full
   row of doubles, so the cache behaviour depends strongly on how virtual
   pages land in the physically-indexed cache — this is the workload the
   paper calls out for >10% execution-time variation from the kernel's
   virtual-to-physical page selection (§4.4), and the longest-running
   workload of Table 1. *)

open Systrace_isa
open Systrace_kernel

let name = "tomcatv"

let files = []

let nmesh = 80 (* 80x80 doubles per mesh = 51 KB each *)
let sweeps = 26

let program () : Builder.program =
  let a = Asm.create "tomcatv" in
  let open Asm in
  let row_bytes = nmesh * 8 in
  func a "main" ~frame:8 ~saves:[ Reg.s0; Reg.s1; Reg.s2 ] (fun () ->
      la a Reg.t0 "$consts";
      ld a 8 0 Reg.t0;                     (* 0.25 *)
      ld a 9 8 Reg.t0;                     (* 1/(N-1) *)
      ld a 10 16 Reg.t0;                   (* 1.0 *)
      (* init: mesh[i][j] = i*h + j*h; rhs[i][j] = 1 - i*h*j*h *)
      li a Reg.t1 0;                       (* i *)
      la a Reg.t2 "$mesh";
      la a Reg.t3 "$rhs";
      label a "$initi";
      slti a Reg.t4 Reg.t1 nmesh;
      beqz a Reg.t4 "$sweep0";
      nop a;
      mtc1 a Reg.t1 0;
      cvtdw a 0 0;
      fmul a 0 0 9;                        (* i*h *)
      li a Reg.t5 0;                       (* j *)
      label a "$initj";
      slti a Reg.t4 Reg.t5 nmesh;
      beqz a Reg.t4 "$initnext";
      nop a;
      mtc1 a Reg.t5 1;
      cvtdw a 1 1;
      fmul a 1 1 9;                        (* j*h *)
      fadd a 2 0 1;
      sd a 2 0 Reg.t2;
      fmul a 3 0 1;
      i a (Insn.Fop (FSUB, 3, 10, 3));
      sd a 3 0 Reg.t3;
      addiu a Reg.t2 Reg.t2 8;
      addiu a Reg.t3 Reg.t3 8;
      i a (Insn.J (Sym "$initj"));
      addiu a Reg.t5 Reg.t5 1;
      label a "$initnext";
      i a (Insn.J (Sym "$initi"));
      addiu a Reg.t1 Reg.t1 1;
      (* relaxation sweeps *)
      label a "$sweep0";
      li a Reg.s0 sweeps;
      label a "$sweep";
      (* row-major update of interior points:
         m[i][j] = 0.25*(m[i][j-1] + m[i][j+1] + m[i-1][j] + m[i+1][j])
                   + rhs[i][j]*h *)
      li a Reg.s1 1;                       (* i *)
      label a "$ri";
      slti a Reg.t0 Reg.s1 (nmesh - 1);
      beqz a Reg.t0 "$colmajor";
      nop a;
      (* t2 = &m[i][1]; t3 = &rhs[i][1] *)
      li a Reg.t0 row_bytes;
      mul a Reg.t1 Reg.s1 Reg.t0;
      la a Reg.t2 "$mesh";
      addu a Reg.t2 Reg.t2 Reg.t1;
      addiu a Reg.t2 Reg.t2 8;
      la a Reg.t3 "$rhs";
      addu a Reg.t3 Reg.t3 Reg.t1;
      addiu a Reg.t3 Reg.t3 8;
      li a Reg.s2 (nmesh - 2);             (* j count *)
      label a "$rj";
      ld a 0 (-8) Reg.t2;
      ld a 1 8 Reg.t2;
      ld a 2 (-row_bytes) Reg.t2;
      ld a 3 row_bytes Reg.t2;
      fadd a 0 0 1;
      fadd a 2 2 3;
      fadd a 0 0 2;
      fmul a 0 0 8;
      ld a 4 0 Reg.t3;
      fmul a 4 4 9;
      fadd a 0 0 4;
      sd a 0 0 Reg.t2;
      addiu a Reg.t2 Reg.t2 8;
      addiu a Reg.t3 Reg.t3 8;
      addiu a Reg.s2 Reg.s2 (-1);
      bgtz a Reg.s2 "$rj";
      nop a;
      i a (Insn.J (Sym "$ri"));
      addiu a Reg.s1 Reg.s1 1;
      (* column-major pass: the page-mapping-sensitive strided sweep *)
      label a "$colmajor";
      li a Reg.s1 1;                       (* j *)
      label a "$cj";
      slti a Reg.t0 Reg.s1 (nmesh - 1);
      beqz a Reg.t0 "$sweepnext";
      nop a;
      (* t2 = &m[1][j] *)
      sll a Reg.t1 Reg.s1 3;
      la a Reg.t2 "$mesh";
      addu a Reg.t2 Reg.t2 Reg.t1;
      addiu a Reg.t2 Reg.t2 row_bytes;
      li a Reg.s2 (nmesh - 2);
      label a "$ci";
      ld a 0 (-row_bytes) Reg.t2;
      ld a 1 row_bytes Reg.t2;
      ld a 2 0 Reg.t2;
      fadd a 0 0 1;
      fmul a 0 0 8;
      fmul a 2 2 10;
      fadd a 0 0 2;
      fmul a 0 0 8;
      fadd a 0 0 0;
      sd a 0 0 Reg.t2;
      addiu a Reg.t2 Reg.t2 row_bytes;     (* stride one row *)
      addiu a Reg.s2 Reg.s2 (-1);
      bgtz a Reg.s2 "$ci";
      nop a;
      i a (Insn.J (Sym "$cj"));
      addiu a Reg.s1 Reg.s1 1;
      label a "$sweepnext";
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$sweep";
      nop a;
      (* digest: trunc(1000 * m[N/2][N/2]) *)
      la a Reg.t2 "$mesh";
      li a Reg.t0 ((nmesh / 2 * nmesh) + (nmesh / 2));
      sll a Reg.t0 Reg.t0 3;
      addu a Reg.t2 Reg.t2 Reg.t0;
      ld a 0 0 Reg.t2;
      la a Reg.t1 "$consts";
      ld a 1 24 Reg.t1;
      fmul a 0 0 1;
      truncwd a 0 0;
      mfc1 a Reg.a0 0;
      bgez a Reg.a0 "$pos";
      nop a;
      subu a Reg.a0 Reg.zero Reg.a0;
      label a "$pos";
      jal a "print_uint";
      li a Reg.v0 0);
  align a 8;
  dlabel a "$consts";
  double a 0.25;
  double a (1.0 /. float_of_int (nmesh - 1));
  double a 1.0;
  double a 1000.0;
  dlabel a "$mesh";
  space a (nmesh * nmesh * 8);
  dlabel a "$rhs";
  space a (nmesh * nmesh * 8);
  {
    Builder.pname = "tomcatv";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
