(* doduc: "Monte-Carlo simulation of the time evolution of a nuclear
   reactor component" (Fortran).

   Monte Carlo: an integer LCG drives random draws; each draw is
   converted to floating point, pushed through a piecewise physics-ish
   response (branchy FP with divides), and accumulated into region
   tallies.  Mixed integer/FP with data-dependent branches — doduc's
   profile. *)

open Systrace_isa
open Systrace_kernel

let name = "doduc"

let files = []

let samples = 60_000

let program () : Builder.program =
  let a = Asm.create "doduc" in
  let open Asm in
  func a "main" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      la a Reg.t0 "$consts";
      ld a 8 0 Reg.t0;                     (* 1.0 *)
      ld a 9 8 Reg.t0;                     (* 0.5 *)
      ld a 10 16 Reg.t0;                   (* 1/2^31 *)
      ld a 11 24 Reg.t0;                   (* 3.14159... *)
      mtc1 a Reg.zero 12;
      cvtdw a 12 12;                       (* tally A *)
      fmov a 13 12;                        (* tally B *)
      fmov a 14 12;                        (* tally C *)
      li a Reg.s0 samples;
      li a Reg.s1 12345;                   (* LCG state *)
      label a "$mc";
      (* draw u in [0,1): f0 *)
      li a Reg.t1 1103515245;
      mul a Reg.s1 Reg.s1 Reg.t1;
      addiu a Reg.s1 Reg.s1 12345;
      srl a Reg.t2 Reg.s1 1;               (* 31-bit *)
      mtc1 a Reg.t2 0;
      cvtdw a 0 0;
      fmul a 0 0 10;                       (* u *)
      (* piecewise response *)
      fcmp a Insn.FLT 0 9;                 (* u < 0.5 ? *)
      bc1f a "$hi";
      (* low branch: a += u*u + u *)
      fmul a 1 0 0;
      fadd a 1 1 0;
      fadd a 12 12 1;
      j_ a "$nextdraw";
      label a "$hi";
      (* high branch: b += 1/(u + 0.5); every 8th draw also c += pi/u *)
      fadd a 1 0 9;
      i a (Insn.Fop (FDIV, 2, 8, 1));
      fadd a 13 13 2;
      andi a Reg.t3 Reg.s1 0xE000;
      bnez a Reg.t3 "$nextdraw";
      nop a;
      i a (Insn.Fop (FDIV, 3, 11, 1));
      fadd a 14 14 3;
      label a "$nextdraw";
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$mc";
      nop a;
      (* digest: trunc(a + b + c) *)
      fadd a 12 12 13;
      fadd a 12 12 14;
      truncwd a 12 12;
      mfc1 a Reg.a0 12;
      jal a "print_uint";
      li a Reg.v0 0);
  align a 8;
  dlabel a "$consts";
  double a 1.0;
  double a 0.5;
  double a 4.656612873077393e-10;
  double a 3.14159265358979;
  {
    Builder.pname = "doduc";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
