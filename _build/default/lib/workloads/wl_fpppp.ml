(* fpppp: "quantum chemistry analysis" (Fortran).

   fpppp is famous for enormous straight-line basic blocks of floating
   point code (two-electron integral evaluation).  We generate a pair of
   very large unrolled FP blocks — hundreds of dependent and independent
   adds/multiplies over a small working set — and run them repeatedly.
   Dense FP with little memory traffic: arithmetic-stall dominated. *)

open Systrace_isa
open Systrace_kernel

let name = "fpppp"

let files = []

let iters = 1200

let program () : Builder.program =
  let a = Asm.create "fpppp" in
  let open Asm in
  (* One giant block: a fixed pseudo-random dataflow over f2..f13,
     sourced from f0/f1, accumulating into f14. *)
  let big_block seed n =
    let r = ref seed in
    for _ = 1 to n do
      r := ((!r * 75) + 74) mod 65537;
      let fd = 2 + (!r mod 12) in
      r := ((!r * 75) + 74) mod 65537;
      let fs = 2 + (!r mod 12) in
      r := ((!r * 75) + 74) mod 65537;
      let ft = !r mod 14 in
      match !r mod 5 with
      | 0 | 1 -> fadd a fd fs ft
      | 2 | 3 -> fmul a fd fs ft
      | _ -> fsub a fd fs ft
    done;
    (* accumulate from registers the block never writes: the dataflow
       over f2..f13 can overflow to infinity, which is harmless to
       execute but useless as a digest *)
    fadd a 14 14 0;
    fadd a 14 14 1
  in
  func a "main" ~frame:8 ~saves:[ Reg.s0 ] (fun () ->
      (* initialise the register file from constants *)
      la a Reg.t0 "$consts";
      for f = 0 to 13 do
        ld a f (8 * (f mod 4)) Reg.t0
      done;
      mtc1 a Reg.zero 14;
      cvtdw a 14 14;
      li a Reg.s0 iters;
      label a "$iter";
      big_block 11 260;
      big_block 23 260;
      (* renormalise to keep values finite *)
      la a Reg.t1 "$consts";
      ld a 0 0 Reg.t1;
      ld a 1 8 Reg.t1;
      for f = 2 to 13 do
        fmov a f (f mod 2)
      done;
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$iter";
      nop a;
      (* print a digest of the accumulator *)
      truncwd a 14 14;
      mfc1 a Reg.a0 14;
      bgez a Reg.a0 "$pos";
      nop a;
      subu a Reg.a0 Reg.zero Reg.a0;
      label a "$pos";
      andi a Reg.a0 Reg.a0 0xFFFF;
      jal a "print_uint";
      li a Reg.v0 0);
  align a 8;
  dlabel a "$consts";
  double a 1.000244140625;
  double a 0.999755859375;
  double a 1.000003814697265;
  double a 0.999996185302734;
  {
    Builder.pname = "fpppp";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
