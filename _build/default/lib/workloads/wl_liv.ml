(* liv: "the Livermore Loops benchmark".

   Three of the classic kernels (hydro fragment, first difference, tri-
   diagonal elimination) over double vectors, iterated.  Every loop body
   stores a result per iteration: liv has "the worst write-buffer
   behavior of all the workloads, and also significant floating point
   activity" — and since the machine model overlaps FP latency with
   write-buffer drains while the trace-driven simulator does not, liv is
   the workload whose prediction error exposes that modelling gap
   (Figure 3). *)

open Systrace_isa
open Systrace_kernel

let name = "liv"

let files = []

let n = 4096 (* vector elements *)
let reps = 28

let program () : Builder.program =
  let a = Asm.create "liv" in
  let open Asm in
  func a "main" ~frame:8 ~saves:[ Reg.s0; Reg.s1 ] (fun () ->
      (* x[k] = k * 2^-8, y[k] = 1 - x[k]/2, z[k] = 0 *)
      la a Reg.t0 "$consts";
      ld a 8 0 Reg.t0;                     (* 2^-8 *)
      ld a 9 8 Reg.t0;                     (* 1.0 *)
      ld a 10 16 Reg.t0;                   (* 0.5 *)
      ld a 11 24 Reg.t0;                   (* q = 0.00125 *)
      li a Reg.t1 0;
      la a Reg.t2 "$x";
      la a Reg.t3 "$y";
      la a Reg.t4 "$z";
      label a "$init";
      slti a Reg.t5 Reg.t1 n;
      beqz a Reg.t5 "$kernels";
      nop a;
      mtc1 a Reg.t1 0;
      cvtdw a 0 0;
      fmul a 0 0 8;                        (* x = k/256 *)
      sd a 0 0 Reg.t2;
      fmul a 1 0 10;
      i a (Insn.Fop (FSUB, 1, 9, 1));      (* y = 1 - x/2 *)
      sd a 1 0 Reg.t3;
      mtc1 a Reg.zero 2;
      cvtdw a 2 2;
      sd a 2 0 Reg.t4;
      addiu a Reg.t2 Reg.t2 8;
      addiu a Reg.t3 Reg.t3 8;
      addiu a Reg.t4 Reg.t4 8;
      i a (Insn.J (Sym "$init"));
      addiu a Reg.t1 Reg.t1 1;
      label a "$kernels";
      li a Reg.s0 reps;
      label a "$rep";
      (* Kernel 1 (hydro): z[k] = q + y[k]*(x[k]*0.5 + y[k+8]*0.25) *)
      la a Reg.t2 "$x";
      la a Reg.t3 "$y";
      la a Reg.t4 "$z";
      li a Reg.t1 (n - 16);
      label a "$k1";
      ld a 0 0 Reg.t2;
      ld a 1 0 Reg.t3;
      ld a 2 64 Reg.t3;                    (* y[k+8] *)
      fmul a 0 0 10;
      fmul a 2 2 10;
      fmul a 2 2 10;
      fadd a 0 0 2;
      fmul a 0 0 1;
      fadd a 0 0 11;
      sd a 0 0 Reg.t4;                     (* store every iteration *)
      addiu a Reg.t2 Reg.t2 8;
      addiu a Reg.t3 Reg.t3 8;
      addiu a Reg.t4 Reg.t4 8;
      addiu a Reg.t1 Reg.t1 (-1);
      bgtz a Reg.t1 "$k1";
      nop a;
      (* Kernel 2 (damped first difference):
         y[k] = (z[k+1] - z[k])*q + y[k]*0.5 *)
      la a Reg.t3 "$y";
      la a Reg.t4 "$z";
      li a Reg.t1 (n - 16);
      label a "$k2";
      ld a 0 8 Reg.t4;
      ld a 1 0 Reg.t4;
      ld a 2 0 Reg.t3;
      i a (Insn.Fop (FSUB, 0, 0, 1));
      fmul a 0 0 11;
      fmul a 2 2 10;
      fadd a 0 0 2;
      sd a 0 0 Reg.t3;
      addiu a Reg.t3 Reg.t3 8;
      addiu a Reg.t4 Reg.t4 8;
      addiu a Reg.t1 Reg.t1 (-1);
      bgtz a Reg.t1 "$k2";
      nop a;
      addiu a Reg.s0 Reg.s0 (-1);
      bgtz a Reg.s0 "$rep";
      nop a;
      (* digest: trunc(1000 * (z[n/2] + x[n/2])) *)
      la a Reg.t4 "$z";
      ld a 0 ((n / 2) * 8 land 0x7FF0) Reg.t4;
      la a Reg.t3 "$x";
      ld a 2 ((n / 2) * 8 land 0x7FF0) Reg.t3;
      fadd a 0 0 2;
      la a Reg.t0 "$consts";
      ld a 1 32 Reg.t0;                    (* 1000.0 *)
      fmul a 0 0 1;
      truncwd a 0 0;
      mfc1 a Reg.a0 0;
      bgez a Reg.a0 "$pos";
      nop a;
      subu a Reg.a0 Reg.zero Reg.a0;
      label a "$pos";
      jal a "print_uint";
      li a Reg.v0 0);
  align a 8;
  dlabel a "$consts";
  double a 0.00390625;
  double a 1.0;
  double a 0.5;
  double a 0.00125;
  double a 1000.0;
  dlabel a "$x";
  space a (n * 8);
  dlabel a "$y";
  space a ((n + 16) * 8);
  dlabel a "$z";
  space a ((n + 16) * 8);
  {
    Builder.pname = "liv";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
