(* The experimental workload suite: Table 1 of the paper, scaled ~100x
   down so the full validation matrix simulates in minutes (DESIGN.md,
   "Scale substitutions").  Each workload is an assembly program with the
   characteristic behaviour of its original; run lengths keep the paper's
   ordering (sed shortest ... tomcatv longest). *)

open Systrace_kernel

type entry = {
  name : string;
  description : string;
  files : Builder.file_spec list;
  program : unit -> Builder.program;
}

let all : entry list =
  [
    {
      name = Wl_sed.name;
      description = "stream editor run three times over the same input file";
      files = Wl_sed.files;
      program = Wl_sed.program;
    };
    {
      name = Wl_egrep.name;
      description = "DFA pattern search run three times over an input file";
      files = Wl_egrep.files;
      program = Wl_egrep.program;
    };
    {
      name = Wl_yacc.name;
      description = "LR parser-generator table construction on a grammar";
      files = Wl_yacc.files;
      program = Wl_yacc.program;
    };
    {
      name = Wl_gcc.name;
      description = "compiler front end: tokenize, build IR, sixteen passes";
      files = Wl_gcc.files;
      program = Wl_gcc.program;
    };
    {
      name = Wl_compress.name;
      description = "Lempel-Ziv compression of a file through a hash dictionary";
      files = Wl_compress.files;
      program = Wl_compress.program;
    };
    {
      name = Wl_espresso.name;
      description = "boolean minimization: cube containment fixpoint";
      files = Wl_espresso.files;
      program = Wl_espresso.program;
    };
    {
      name = Wl_lisp.name;
      description = "8-queens with cons cells and a free-list heap";
      files = Wl_lisp.files;
      program = Wl_lisp.program;
    };
    {
      name = Wl_eqntott.name;
      description = "boolean equations to truth tables: quicksort of minterms";
      files = Wl_eqntott.files;
      program = Wl_eqntott.program;
    };
    {
      name = Wl_fpppp.name;
      description = "quantum chemistry: huge straight-line FP basic blocks";
      files = Wl_fpppp.files;
      program = Wl_fpppp.program;
    };
    {
      name = Wl_doduc.name;
      description = "Monte-Carlo reactor simulation: branchy FP";
      files = Wl_doduc.files;
      program = Wl_doduc.program;
    };
    {
      name = Wl_liv.name;
      description = "Livermore loops: store-per-iteration FP kernels";
      files = Wl_liv.files;
      program = Wl_liv.program;
    };
    {
      name = Wl_tomcatv.name;
      description = "mesh generation: strided 2D relaxation sweeps";
      files = Wl_tomcatv.files;
      program = Wl_tomcatv.program;
    };
  ]

let find name = List.find (fun e -> e.name = name) all
