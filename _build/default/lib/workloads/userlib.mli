(** The mini C library every workload links against: system-call wrappers
    (exit/read/write/open/sbrk/yield/gettime/thread_create), memcpy /
    memset / strlen / puts / print_uint, a deterministic LCG [u_rand],
    and [u_write_all].  All written in the assembler eDSL; instrumented
    like any other user code. *)

val make : unit -> Systrace_isa.Objfile.t
