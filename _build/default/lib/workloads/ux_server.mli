(** The Mach UX file server (paper §3.6): a user-level process receiving
    open/read/write messages through the kernel's message path, serving
    them from its own 16-page block cache backed by raw disk I/O, with
    write-behind (asynchronous from the client's point of view) —
    the structural contrast to Ultrix's in-kernel synchronous path that
    Table 3 and the os_structure experiment measure. *)

val make :
  file_plan:(string * int * int) list -> unit -> Systrace_isa.Objfile.t
(** [file_plan] gives (name, start block, byte size) for every file the
    booted system carries, from {!Systrace_kernel.Builder.file_plan}. *)
