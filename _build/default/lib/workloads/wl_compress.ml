(* compress: "data compression using Lempel-Ziv encoding; a file is
   compressed then uncompressed".

   LZW with a 4096-entry chained hash dictionary mapping (prefix code,
   next byte) to a new code.  The dictionary and its hash heads are the
   largest data structure of the byte-stream workloads, and the input is
   read sequentially block by block — making this the workload whose
   timing depends on disk read-ahead, the cause of its Figure 3 error.
   The 16-bit code stream is written to an output file; a checksum of the
   codes is printed. *)

open Systrace_isa
open Systrace_kernel

let name = "compress"

let input =
  let b = Buffer.create 12288 in
  let r = ref 99 in
  for i = 0 to 12287 do
    r := ((!r * 1103515245) + 12345) land 0x7FFFFFFF;
    let c =
      if i land 15 < 9 then Char.chr (97 + (!r mod 6))
      else Char.chr (32 + (!r mod 64))
    in
    Buffer.add_char b c
  done;
  Buffer.contents b

let files =
  [
    { Builder.fname = "comp.in"; data = input; writable_bytes = 0 };
    { Builder.fname = "comp.out"; data = ""; writable_bytes = 32768 };
  ]

let program () : Builder.program =
  let a = Asm.create "compress" in
  let open Asm in
  func a "main" ~frame:16
    ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.s4; Reg.s5 ] (fun () ->
      la a Reg.a0 "$fin";
      jal a "u_open";
      move a Reg.s0 Reg.v0;
      li a Reg.s4 256;                      (* next dictionary code *)
      li a Reg.s2 (-1);                     (* current prefix code *)
      li a Reg.s5 0;                        (* checksum of emitted codes *)
      label a "$chunk";
      move a Reg.a0 Reg.s0;
      la a Reg.a1 "$buf";
      li a Reg.a2 1024;
      jal a "u_read";
      blez a Reg.v0 "$flush";
      la a Reg.s1 "$buf";
      addu a Reg.s3 Reg.s1 Reg.v0;
      label a "$byte";
      beq a Reg.s1 Reg.s3 "$chunk";
      nop a;
      lbu a Reg.t0 0 Reg.s1;
      addiu a Reg.s1 Reg.s1 1;
      bgez a Reg.s2 "$havepfx";
      nop a;
      move a Reg.s2 Reg.t0;
      j_ a "$byte";
      label a "$havepfx";
      (* probe the chained hash for key = prefix | byte<<16 *)
      sll a Reg.t1 Reg.s2 4;
      xor_ a Reg.t1 Reg.t1 Reg.t0;
      andi a Reg.t1 Reg.t1 4095;
      sll a Reg.t2 Reg.t1 2;
      la a Reg.t3 "$hash_head";
      addu a Reg.t3 Reg.t3 Reg.t2;
      lw a Reg.t4 0 Reg.t3;                 (* entry index (0 = none) *)
      label a "$probe";
      beqz a Reg.t4 "$miss";
      nop a;
      sll a Reg.t5 Reg.t4 3;
      sll a Reg.t6 Reg.t4 2;
      addu a Reg.t5 Reg.t5 Reg.t6;          (* idx * 12 *)
      la a Reg.t6 "$entries";
      addu a Reg.t5 Reg.t5 Reg.t6;
      lw a Reg.t6 0 Reg.t5;                 (* key *)
      sll a Reg.t7 Reg.t0 16;
      or_ a Reg.t7 Reg.t7 Reg.s2;
      bne a Reg.t6 Reg.t7 "$chainstep";
      nop a;
      lw a Reg.s2 4 Reg.t5;                 (* hit: follow the code *)
      j_ a "$byte";
      label a "$chainstep";
      lw a Reg.t4 8 Reg.t5;
      j_ a "$probe";
      label a "$miss";
      jal a "$emit_code";
      (* insert (prefix, byte) -> next code while the dictionary has room *)
      slti a Reg.t1 Reg.s4 4096;
      beqz a Reg.t1 "$noinsert";
      nop a;
      sll a Reg.t5 Reg.s4 3;
      sll a Reg.t6 Reg.s4 2;
      addu a Reg.t5 Reg.t5 Reg.t6;
      la a Reg.t6 "$entries";
      addu a Reg.t5 Reg.t5 Reg.t6;
      sll a Reg.t7 Reg.t0 16;
      or_ a Reg.t7 Reg.t7 Reg.s2;
      sw a Reg.t7 0 Reg.t5;
      sw a Reg.s4 4 Reg.t5;
      sll a Reg.t1 Reg.s2 4;
      xor_ a Reg.t1 Reg.t1 Reg.t0;
      andi a Reg.t1 Reg.t1 4095;
      sll a Reg.t2 Reg.t1 2;
      la a Reg.t3 "$hash_head";
      addu a Reg.t3 Reg.t3 Reg.t2;
      lw a Reg.t6 0 Reg.t3;
      sw a Reg.t6 8 Reg.t5;
      sw a Reg.s4 0 Reg.t3;
      addiu a Reg.s4 Reg.s4 1;
      label a "$noinsert";
      move a Reg.s2 Reg.t0;
      j_ a "$byte";
      label a "$flush";
      bltz a Reg.s2 "$wout";
      nop a;
      jal a "$emit_code";
      label a "$wout";
      (* write the code stream to the output file *)
      la a Reg.a0 "$fout";
      jal a "u_open";
      move a Reg.a0 Reg.v0;
      la a Reg.a1 "$outbuf";
      la a Reg.a2 "$outlen";
      lw a Reg.a2 0 Reg.a2;
      jal a "u_write_all";
      (* ---- decompression pass ("a file is compressed then
         uncompressed"): re-read the input computing (byte sum, count),
         then expand every emitted code by walking the dictionary's
         prefix chains, and verify the two agree.  The decoder shares the
         encoder's completed dictionary, which also resolves the classic
         KwKwK case. ---- *)
      (* s0 = input byte sum, s1 = input byte count *)
      li a Reg.s0 0;
      li a Reg.s1 0;
      la a Reg.a0 "$fin";
      jal a "u_open";
      move a Reg.s2 Reg.v0;
      label a "$vchunk";
      move a Reg.a0 Reg.s2;
      la a Reg.a1 "$buf";
      li a Reg.a2 1024;
      jal a "u_read";
      blez a Reg.v0 "$vdone";
      nop a;
      la a Reg.t0 "$buf";
      addu a Reg.t1 Reg.t0 Reg.v0;
      label a "$vsum";
      beq a Reg.t0 Reg.t1 "$vchunk";
      nop a;
      lbu a Reg.t2 0 Reg.t0;
      addu a Reg.s0 Reg.s0 Reg.t2;
      addiu a Reg.s1 Reg.s1 1;
      i a (Insn.J (Sym "$vsum"));
      addiu a Reg.t0 Reg.t0 1;
      label a "$vdone";
      (* s3 = decoded byte sum, s4 = decoded byte count *)
      li a Reg.s3 0;
      li a Reg.s4 0;
      la a Reg.t0 "$outbuf";
      la a Reg.t1 "$outlen";
      lw a Reg.t1 0 Reg.t1;
      addu a Reg.t1 Reg.t0 Reg.t1;       (* end of code stream *)
      label a "$dcode";
      sltu a Reg.t2 Reg.t0 Reg.t1;
      beqz a Reg.t2 "$dverify";
      nop a;
      lhu a Reg.t3 0 Reg.t0;             (* code *)
      addiu a Reg.t0 Reg.t0 2;
      (* walk the prefix chain: codes >= 256 decompose via the dictionary *)
      label a "$dwalk";
      slti a Reg.t4 Reg.t3 256;
      bnez a Reg.t4 "$droot";
      nop a;
      (* entry t3: key = prefix | byte<<16 at entries + t3*12 *)
      sll a Reg.t5 Reg.t3 3;
      sll a Reg.t6 Reg.t3 2;
      addu a Reg.t5 Reg.t5 Reg.t6;
      la a Reg.t6 "$entries";
      addu a Reg.t5 Reg.t5 Reg.t6;
      lw a Reg.t6 0 Reg.t5;              (* key *)
      srl a Reg.t7 Reg.t6 16;            (* appended byte *)
      addu a Reg.s3 Reg.s3 Reg.t7;
      addiu a Reg.s4 Reg.s4 1;
      andi a Reg.t3 Reg.t6 0xFFFF;       (* prefix code *)
      j_ a "$dwalk";
      label a "$droot";
      addu a Reg.s3 Reg.s3 Reg.t3;       (* the root literal byte *)
      addiu a Reg.s4 Reg.s4 1;
      j_ a "$dcode";
      label a "$dverify";
      bne a Reg.s3 Reg.s0 "$dfail";
      nop a;
      bne a Reg.s4 Reg.s1 "$dfail";
      nop a;
      move a Reg.a0 Reg.s5;              (* round trip verified *)
      jal a "print_uint";
      li a Reg.v0 0;
      j_ a "main$epilogue";
      label a "$dfail";
      li a Reg.a0 0;
      jal a "print_uint";
      li a Reg.v0 1;
      j_ a "main$epilogue";
      (* ---- $emit_code: append the prefix code (s2) as a halfword ---- *)
      label a "$emit_code";
      la a Reg.t1 "$outlen";
      lw a Reg.t2 0 Reg.t1;
      la a Reg.t3 "$outbuf";
      addu a Reg.t3 Reg.t3 Reg.t2;
      sh a Reg.s2 0 Reg.t3;
      addiu a Reg.t2 Reg.t2 2;
      sw a Reg.t2 0 Reg.t1;
      addu a Reg.s5 Reg.s5 Reg.s2;
      ret a);
  dlabel a "$fin";
  asciiz a "comp.in";
  dlabel a "$fout";
  asciiz a "comp.out";
  dlabel a "$outlen";
  word a 0;
  align a 4;
  dlabel a "$buf";
  space a 1032;
  dlabel a "$hash_head";
  space a (4096 * 4);
  dlabel a "$entries";
  space a (4096 * 12);
  align a 4;
  dlabel a "$outbuf";
  space a 32768;
  {
    Builder.pname = "compress";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
