(* espresso: "a program that minimizes boolean functions".

   The core data structure of espresso is the cube: a wide bitset over
   the input literals.  The workload reads a PLA-style input file of
   cubes, then runs the characteristic inner loops: pairwise cube
   intersection/containment tests (word-wise AND + compare) and distance-1
   merging, iterating until no more cubes merge.  Dense integer/bitset
   work over a few tens of kilobytes. *)

open Systrace_isa
open Systrace_kernel

let name = "espresso"

let ncubes = 192
let cubewords = 8 (* 256-bit cubes *)

let input =
  (* each line: cubewords hex words as raw bytes *)
  let b = Buffer.create 8192 in
  let r = ref 41 in
  for k = 0 to (ncubes * cubewords) - 1 do
    r := ((!r * 1103515245) + 12345) land 0x7FFFFFFF;
    (* alternate dense and sparse cubes: dense ones cover sparse ones *)
    let w =
      if (k / cubewords) land 1 = 0 then (!r lor (!r asr 3)) land 0xFFFF
      else !r land (!r asr 3) land (!r asr 6) land 0xFFFF
    in
    Buffer.add_char b (Char.chr (w land 0xFF));
    Buffer.add_char b (Char.chr ((w lsr 8) land 0xFF));
    Buffer.add_char b '\000';
    Buffer.add_char b '\000'
  done;
  Buffer.contents b

let files = [ { Builder.fname = "esp.in"; data = input; writable_bytes = 0 } ]

let program () : Builder.program =
  let a = Asm.create "espresso" in
  let open Asm in
  func a "main" ~frame:16 ~saves:[ Reg.s0; Reg.s1; Reg.s2; Reg.s3; Reg.s4 ]
    (fun () ->
      (* read all cubes *)
      la a Reg.a0 "$fname";
      jal a "u_open";
      move a Reg.s0 Reg.v0;
      la a Reg.s1 "$cubes";
      label a "$rd";
      move a Reg.a0 Reg.s0;
      move a Reg.a1 Reg.s1;
      li a Reg.a2 1024;
      jal a "u_read";
      blez a Reg.v0 "$minimize";
      nop a;
      i a (Insn.J (Sym "$rd"));
      addu a Reg.s1 Reg.s1 Reg.v0;
      (* minimize: repeat { for each pair (i, j>i): if i covers j, kill j;
         count survivors } until no kill *)
      label a "$minimize";
      li a Reg.s4 0;                      (* merge/kill count *)
      label a "$sweep";
      li a Reg.s0 0;                      (* killed this sweep *)
      li a Reg.s1 0;                      (* i *)
      label a "$iloop";
      slti a Reg.t0 Reg.s1 ncubes;
      beqz a Reg.t0 "$sweep_end";
      nop a;
      (* skip dead cubes: live[i]? *)
      la a Reg.t1 "$live";
      addu a Reg.t1 Reg.t1 Reg.s1;
      lbu a Reg.t2 0 Reg.t1;
      bnez a Reg.t2 "$inext";
      nop a;
      addiu a Reg.s2 Reg.s1 1;            (* j *)
      label a "$jloop";
      slti a Reg.t0 Reg.s2 ncubes;
      beqz a Reg.t0 "$inext";
      nop a;
      la a Reg.t1 "$live";
      addu a Reg.t1 Reg.t1 Reg.s2;
      lbu a Reg.t2 0 Reg.t1;
      bnez a Reg.t2 "$jnext";
      nop a;
      (* containment: (cube_i AND cube_j) == cube_j ? *)
      sll a Reg.t3 Reg.s1 5;              (* i * 32 bytes *)
      la a Reg.t4 "$cubes";
      addu a Reg.t3 Reg.t4 Reg.t3;
      sll a Reg.t5 Reg.s2 5;
      addu a Reg.t5 Reg.t4 Reg.t5;
      li a Reg.t6 cubewords;
      label a "$cmp";
      blez a Reg.t6 "$covered";
      nop a;
      lw a Reg.t7 0 Reg.t3;
      lw a Reg.a3 0 Reg.t5;
      and_ a Reg.t7 Reg.t7 Reg.a3;
      bne a Reg.t7 Reg.a3 "$jnext";
      addiu a Reg.t3 Reg.t3 4;
      addiu a Reg.t5 Reg.t5 4;
      i a (Insn.J (Sym "$cmp"));
      addiu a Reg.t6 Reg.t6 (-1);
      label a "$covered";
      (* kill j *)
      la a Reg.t1 "$live";
      addu a Reg.t1 Reg.t1 Reg.s2;
      li a Reg.t2 1;
      sb a Reg.t2 0 Reg.t1;
      addiu a Reg.s0 Reg.s0 1;
      addiu a Reg.s4 Reg.s4 1;
      label a "$jnext";
      i a (Insn.J (Sym "$jloop"));
      addiu a Reg.s2 Reg.s2 1;
      label a "$inext";
      i a (Insn.J (Sym "$iloop"));
      addiu a Reg.s1 Reg.s1 1;
      label a "$sweep_end";
      bnez a Reg.s0 "$sweep";
      nop a;
      (* report: survivors * 1000 + kills *)
      li a Reg.t0 0;
      li a Reg.t1 0;                      (* survivors *)
      la a Reg.t2 "$live";
      label a "$count";
      slti a Reg.t3 Reg.t0 ncubes;
      beqz a Reg.t3 "$report";
      nop a;
      lbu a Reg.t4 0 Reg.t2;
      addiu a Reg.t2 Reg.t2 1;
      bnez a Reg.t4 "$cnext";
      nop a;
      addiu a Reg.t1 Reg.t1 1;
      label a "$cnext";
      i a (Insn.J (Sym "$count"));
      addiu a Reg.t0 Reg.t0 1;
      label a "$report";
      li a Reg.t5 1000;
      mul a Reg.a0 Reg.t1 Reg.t5;
      addu a Reg.a0 Reg.a0 Reg.s4;
      jal a "print_uint";
      li a Reg.v0 0);
  dlabel a "$fname";
  asciiz a "esp.in";
  align a 8;
  dlabel a "$cubes";
  space a (ncubes * cubewords * 4);
  dlabel a "$live";
  space a (ncubes + 8);
  {
    Builder.pname = "espresso";
    modules = [ to_obj a; Userlib.make () ];
    heap_pages = 2;
    is_server = false;
    notrace = false;
  }
