(** epoxie: link-time instrumentation for address tracing (paper §3.2).

    Rewrites object modules so that executing them generates an address
    trace: a three-instruction preamble at every basic block (save $ra,
    [jal bbtrace], a trace-word-count no-op in the delay slot) and a
    [jal memtrace] before every memory instruction of the original text,
    normally with the memory instruction riding in the delay slot.

    Because operands are still symbolic at this stage, all address
    correction implied by the text expansion happens statically in the
    linker — no runtime translation table, unlike pixie.  Text growth is
    1.9-2.3x for ordinary code.

    Functions in a module's [protected] set are register-steal-rewritten
    but not traced; [no_instrument] modules pass through untouched. *)

open Systrace_isa

(** Descriptor of one instrumented block, in terms of the ORIGINAL module:
    [anchor] labels the instrumented block body (the trace record address
    after linking); the rest describes the original block for the parsing
    library. *)
type bb_desc = {
  anchor : string;
  orig_index : int;
  ninsns : int;
  mems : (int * int * bool) array;
}

val sym_bbtrace : string
val sym_memtrace : string

val instrument_obj : Objfile.t -> Objfile.t * bb_desc list

val instrument_modules :
  Objfile.t list -> Objfile.t list * (string * bb_desc list) list
(** Instrument a set of modules; link the result together with the
    matching tracing runtime ({!Runtime.make}) and build the lookup table
    with {!Bbmap.build}. *)

val expansion : original:Objfile.t list -> instrumented:Objfile.t list -> float
(** Text growth factor. *)

val wrap_mem : Insn.t -> Rewrite.titem list
(** Exposed for tests: the per-memory-instruction wrapping, including the
    hazard cases. *)
