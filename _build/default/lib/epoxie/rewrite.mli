(** Pre-instrumentation rewriting: delay-slot hoisting and register
    stealing (paper §3.5).

    Uses of the three stolen registers are replaced with sequences using
    shadow values in the bookkeeping area; $at is the designated scratch
    (dead across instructions by convention) and $v1 is borrowed — never
    $ra, whose value the tracing runtime restores — when a second scratch
    is needed.  Instructions that cannot be rewritten raise
    {!Unrewritable} with an explanation. *)

open Systrace_isa

exception Unrewritable of string

(** Items tagged with provenance: [true] = instruction of the original
    program (its memory references are traced); [false] = inserted by the
    tracing system. *)
type titem =
  | TLabel of string
  | TInsn of Insn.t * bool

val tag_items : Objfile.titem list -> titem list
val untag_items : titem list -> Objfile.titem list

val needs_steal : Insn.t -> bool

val hoist_pass : titem list -> titem list
(** Move steal-needing or memory instructions out of delay slots (legal
    when the branch reads nothing the slot writes). *)

val steal_rewrite_insn : Insn.t -> tag:bool -> titem list
val steal_pass : titem list -> titem list

val rewrite : titem list -> titem list
(** [steal_pass % hoist_pass]. *)
