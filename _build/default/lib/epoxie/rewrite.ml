(* Pre-instrumentation rewriting passes: delay-slot hoisting and register
   stealing.

   Register stealing (paper, section 3.5): epoxie operates on binaries
   after compilation, so the three registers the tracing system needs
   ($t7/$t8/$t9, see [Systrace_tracing.Abi]) must be stolen from the
   original code.  Uses of stolen registers are replaced with sequences that
   use a shadow value in memory (in the bookkeeping area pointed to by
   xreg_book).  $at is the designated scratch register: compiled code never
   carries a live value in $at across instructions (the assembler reserves
   it); when a second scratch is needed, $ra is borrowed and restored.

   Delay-slot hoisting: an instruction in a branch delay slot cannot have
   code inserted around it, so if the slot instruction needs steal-rewriting
   or memtrace wrapping it is hoisted to just before the branch (legal when
   the branch does not read anything the slot writes — a MIPS delay slot
   executes unconditionally, so ordering is otherwise immaterial) and the
   slot is refilled with a nop.

   Instructions inserted by these passes are tagged as non-original:
   their memory references belong to the tracing system, not to the traced
   program, and must not be wrapped with memtrace. *)

open Systrace_isa
open Systrace_tracing

exception Unrewritable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unrewritable s)) fmt

(* Items tagged with provenance: [true] = instruction of the original
   program; [false] = inserted by the tracing system. *)
type titem =
  | TLabel of string
  | TInsn of Insn.t * bool

let tag_items (items : Objfile.titem list) : titem list =
  List.map
    (function
      | Objfile.Label l -> TLabel l
      | Objfile.Insn i -> TInsn (i, true))
    items

let untag_items (items : titem list) : Objfile.titem list =
  List.map
    (function
      | TLabel l -> Objfile.Label l
      | TInsn (i, _) -> Objfile.Insn i)
    items

let is_stolen r = List.mem r Abi.stolen

let needs_steal insn =
  List.exists is_stolen (Insn.uses insn)
  || List.exists is_stolen (Insn.defs insn)

(* ------------------------------------------------------------------ *)
(* Delay-slot hoisting                                                  *)

let intersects a b = List.exists (fun x -> List.mem x b) a

let hoist_pass (items : titem list) : titem list =
  let rec go acc = function
    | [] -> List.rev acc
    | (TInsn (br, _) as bri) :: (TInsn (slot, stag) as sloti) :: rest
      when Insn.is_control br ->
      if needs_steal slot || Insn.is_mem slot then begin
        if Insn.is_control slot then
          fail "control instruction in delay slot: %s" (Insn.to_string slot);
        if intersects (Insn.defs slot) (Insn.uses br) then
          fail "delay slot %s defines a register read by %s"
            (Insn.to_string slot) (Insn.to_string br);
        ignore stag;
        go (TInsn (Insn.nop, false) :: bri :: sloti :: acc) rest
      end
      else go (sloti :: bri :: acc) rest
    | item :: rest -> go (item :: acc) rest
  in
  go [] items

(* ------------------------------------------------------------------ *)
(* Register stealing                                                    *)

let at = Reg.at

(* Map the register operands of an instruction through [f]. *)
let map_regs f (insn : Insn.t) : Insn.t =
  match insn with
  | Alu (op, rd, rs, rt) -> Alu (op, f rd, f rs, f rt)
  | Alui (op, rt, rs, im) -> Alui (op, f rt, f rs, im)
  | Shift (op, rd, rt, sa) -> Shift (op, f rd, f rt, sa)
  | Lui (rt, im) -> Lui (f rt, im)
  | Load (w, rt, base, off) -> Load (w, f rt, f base, off)
  | Store (w, rt, base, off) -> Store (w, f rt, f base, off)
  | Fload (ft, base, off) -> Fload (ft, f base, off)
  | Fstore (ft, base, off) -> Fstore (ft, f base, off)
  | Beq (rs, rt, t) -> Beq (f rs, f rt, t)
  | Bne (rs, rt, t) -> Bne (f rs, f rt, t)
  | Blez (rs, t) -> Blez (f rs, t)
  | Bgtz (rs, t) -> Bgtz (f rs, t)
  | Bltz (rs, t) -> Bltz (f rs, t)
  | Bgez (rs, t) -> Bgez (f rs, t)
  | Jr rs -> Jr (f rs)
  | Jalr (rd, rs) -> Jalr (f rd, f rs)
  | Mtc0 (rt, c) -> Mtc0 (f rt, c)
  | Mfc0 (rt, c) -> Mfc0 (f rt, c)
  | Mfc1 (rt, fs) -> Mfc1 (f rt, fs)
  | Mtc1 (rt, fs) -> Mtc1 (f rt, fs)
  | Cache (op, base, off) -> Cache (op, f base, off)
  | ( J _ | Jal _ | Syscall | Break _ | Hcall _ | Tlbr | Tlbwi | Tlbwr
    | Tlbp | Rfe | Fop _ | Fcmp _ | Bc1t _ | Bc1f _ ) as i -> i

let shadow_load dst r =
  Insn.Load (W, dst, Abi.xreg_book, Imm (Abi.shadow_slot r))

let shadow_store src r =
  Insn.Store (W, src, Abi.xreg_book, Imm (Abi.shadow_slot r))

(* Rewrite one original instruction that touches stolen registers into an
   equivalent sequence using shadow memory.  The core instruction keeps its
   original tag; inserted shadow accesses are tagged false. *)
let steal_rewrite_insn insn ~tag : titem list =
  let uses = List.sort_uniq compare (List.filter is_stolen (Insn.uses insn)) in
  let defs = List.filter is_stolen (Insn.defs insn) in
  match (uses, defs) with
  | [], [] -> [ TInsn (insn, tag) ]
  | _ ->
    let subst = Hashtbl.create 4 in
    let loads, saves, restores =
      match uses with
      | [] -> ([], [], [])
      | [ u ] ->
        Hashtbl.add subst u at;
        ([ shadow_load at u ], [], [])
      | [ u1; u2 ] ->
        (* Second scratch: $v1.  Never $ra — the tracing runtime restores
           $ra from the bookkeeping slot, which would clobber a borrowed
           value around a wrapped memory instruction.  Both sources are
           stolen registers here, so $v1 cannot itself be a source. *)
        let v1 = Reg.v1 in
        Hashtbl.add subst u1 at;
        Hashtbl.add subst u2 v1;
        if List.mem v1 (Insn.uses insn) then
          fail "instruction uses $v1 and two stolen registers: %s"
            (Insn.to_string insn);
        let defines_v1 = List.mem v1 (Insn.defs insn) in
        let saves, restores =
          if defines_v1 then ([], [])
          else
            ( [ Insn.Store (W, v1, Abi.xreg_book, Imm Abi.book_scratch0) ],
              [ Insn.Load (W, v1, Abi.xreg_book, Imm Abi.book_scratch0) ] )
        in
        ([ shadow_load at u1; shadow_load v1 u2 ], saves, restores)
      | _ ->
        fail "instruction uses three stolen registers: %s"
          (Insn.to_string insn)
    in
    (* Sources and destination are substituted independently: the same
       register name can be a stolen source (mapped to its shadow load's
       temporary) and the destination (always computed into $at). *)
    let f r = match Hashtbl.find_opt subst r with Some r' -> r' | None -> r in
    let stores =
      match defs with
      | [] -> []
      | [ d ] -> [ shadow_store at d ]
      | _ ->
        fail "instruction defines two stolen registers: %s"
          (Insn.to_string insn)
    in
    let replace_def d' (i : Insn.t) : Insn.t =
      match i with
      | Alu (op, _, rs, rt) -> Alu (op, d', rs, rt)
      | Alui (op, _, rs, im) -> Alui (op, d', rs, im)
      | Shift (op, _, rt, sa) -> Shift (op, d', rt, sa)
      | Lui (_, im) -> Lui (d', im)
      | Load (w, _, base, off) -> Load (w, d', base, off)
      | Mfc0 (_, c) -> Mfc0 (d', c)
      | Mfc1 (_, fs) -> Mfc1 (d', fs)
      | Jalr (_, rs) -> Jalr (d', rs)
      | i -> i
    in
    let core = map_regs f insn in
    let core = if defs = [] then core else replace_def at core in
    if Insn.is_control core && stores <> [] then
      fail "control instruction with stolen destination: %s"
        (Insn.to_string insn);
    List.map (fun i -> TInsn (i, false)) saves
    @ List.map (fun i -> TInsn (i, false)) loads
    @ [ TInsn (core, tag) ]
    @ List.map (fun i -> TInsn (i, false)) stores
    @ List.map (fun i -> TInsn (i, false)) restores

let steal_pass (items : titem list) : titem list =
  List.concat_map
    (function
      | TLabel _ as l -> [ l ]
      | TInsn (insn, tag) ->
        if needs_steal insn then steal_rewrite_insn insn ~tag
        else [ TInsn (insn, tag) ])
    items

(* Full pre-instrumentation rewrite. *)
let rewrite (items : titem list) : titem list = steal_pass (hoist_pass items)
