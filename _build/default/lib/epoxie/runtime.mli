(** The tracing runtime: bbtrace, memtrace and the direct-store variants.

    Uninstrumented object code linked into every traced program (User
    variant) and into the traced kernel (Kernel variant).  See the .ml for
    the register discipline; the variants differ in the full-buffer path
    (user: trace-flush system call; kernel: set the need-analysis flag and
    keep writing into the slack, or wrap in the discard page when kernel
    tracing is off) and in that kernel trace writes run with interrupts
    disabled, because a nested exception advances the shared cursor. *)

open Systrace_isa

type variant = User | Kernel

val make : variant -> Objfile.t
