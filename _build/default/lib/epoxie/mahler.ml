(* Mahler-style instrumentation: the Tunix/Titan system (paper, §3.4).

   On the Titan, all compilers went through the Mahler intermediate
   language, so the tracing system could simply RESERVE registers at code
   generation time — no register stealing, no shadow slots — and the
   extended linker inserted the trace code.  Two further differences from
   epoxie:

   - the basic-block record carries the block's length inline ("the basic
     block records were written into the trace along with the traced
     addresses"), making the trace bigger — §3.5 explains why the
     DECstation systems switched to one-word records with a static lookup
     table;
   - because the registers are reserved, trace writes are short inline
     sequences rather than calls: there is no $ra save/restore dance and
     no hazard cases at all.

   Register convention (reserved, enforced): $t8 = cursor, $t9 = limit
   (unused by the inline writer; kept for parity), $at = scratch.

   The [parse] function is the corresponding small trace-parsing library
   for the Tunix record format. *)

open Systrace_isa
open Systrace_tracing
open Rewrite

exception Reserved_register_used of string

type bb_desc = {
  anchor : string;
  orig_index : int;
  ninsns : int;
  mems : (int * int * bool) array;
}

let cursor = Abi.xreg_cursor

(* Enforce the compiler-side contract: reserved registers never appear in
   code compiled for a Tunix-style traced system. *)
let check_reserved (obj : Objfile.t) =
  List.iter
    (fun insn ->
      let touches =
        List.exists
          (fun r -> List.mem r Abi.stolen || r = Reg.at)
          (Insn.uses insn @ Insn.defs insn)
      in
      if touches then
        raise
          (Reserved_register_used
             (Printf.sprintf "%s: %s uses a reserved register" obj.name
                (Insn.to_string insn))))
    (Objfile.insns obj)

(* Inline trace write of [reg]'s value. *)
let emit_word_of_reg reg =
  [
    TInsn (Insn.Alui (ADDIU, cursor, cursor, Imm 4), false);
    TInsn (Insn.Store (W, reg, cursor, Imm (-4)), false);
  ]

let wrap_mem_inline (m : Insn.t) : titem list =
  match Insn.mem_base_offset m with
  | Some (base, Insn.Imm off) ->
    (TInsn (Insn.Alui (ADDIU, Reg.at, base, Imm off), false)
     :: emit_word_of_reg Reg.at)
    @ [ TInsn (m, true) ]
  | _ -> [ TInsn (m, true) ]

let instrument_obj (obj : Objfile.t) : Objfile.t * bb_desc list =
  if obj.Objfile.no_instrument then (obj, [])
  else begin
    check_reserved obj;
    let blocks = Bb.analyze obj.text in
    let insns =
      Array.of_list
        (List.filter_map
           (function Objfile.Insn i -> Some i | Objfile.Label _ -> None)
           obj.text)
    in
    let starts = Hashtbl.create 64 in
    List.iteri (fun k (b : Bb.block) -> Hashtbl.replace starts b.Bb.start (k, b)) blocks;
    let descs = ref [] in
    let out = ref [] in
    let emit x = out := x :: !out in
    let idx = ref 0 in
    let pending_control = ref false in
    List.iter
      (function
        | Objfile.Label l -> emit (TLabel l)
        | Objfile.Insn insn ->
          let in_slot = !pending_control in
          pending_control := Insn.is_control insn;
          (match Hashtbl.find_opt starts !idx with
          | Some (k, b) when not in_slot ->
            let anchor = Printf.sprintf "$mbb%d" k in
            (* record: [address of block, length] — two words *)
            emit (TLabel anchor);
            emit (TInsn (Insn.Lui (Reg.at, Hi anchor), false));
            emit (TInsn (Insn.Alui (ORI, Reg.at, Reg.at, Lo anchor), false));
            List.iter emit (emit_word_of_reg Reg.at);
            emit (TInsn (Insn.Alui (ADDIU, Reg.at, Reg.zero, Imm b.Bb.len), false));
            List.iter emit (emit_word_of_reg Reg.at);
            descs :=
              {
                anchor;
                orig_index = b.Bb.start;
                ninsns = b.Bb.len;
                mems =
                  Array.of_list b.Bb.mems
                  |> Array.map (fun (m : Bb.mem_ref) ->
                         (m.Bb.pos, m.Bb.bytes, m.Bb.is_load));
              }
              :: !descs
          | _ -> ());
          (if Insn.is_mem insn then begin
             (* Compiler contract: Mahler never schedules a memory
                instruction into a delay slot when compiling for a traced
                system (code generation is under its control, unlike
                epoxie's post-hoc rewriting). *)
             if in_slot then
               raise
                 (Reserved_register_used
                    (Printf.sprintf
                       "%s: memory instruction in delay slot (recompile \
                        without slot scheduling for Tunix): %s"
                       obj.name (Insn.to_string insn)));
             List.iter emit (wrap_mem_inline insn)
           end
           else emit (TInsn (insn, true)));
          incr idx)
      obj.text;
    ignore insns;
    let text = untag_items (List.rev !out) in
    (Objfile.validate { obj with text }, List.rev !descs)
  end

let instrument_modules mods =
  let results = List.map (fun m -> (m.Objfile.name, instrument_obj m)) mods in
  ( List.map (fun (_, (m, _)) -> m) results,
    List.map (fun (name, (_, d)) -> (name, d)) results )

let expansion ~original ~instrumented =
  let count ms = List.fold_left (fun n m -> n + Objfile.insn_count m) 0 ms in
  float_of_int (count instrumented) /. float_of_int (count original)

(* ------------------------------------------------------------------ *)
(* Tunix trace parsing: records are (anchor address, length) pairs
   followed by the block's data addresses.  The table maps anchors to the
   static block info, as for epoxie; the inline length is validated
   against it — part of the format's redundancy. *)

exception Corrupt of string

type stats = {
  mutable insts : int;
  mutable datas : int;
  mutable records : int;
}

let parse ~(table : Bbtable.t) (words : int array)
    ~(on_inst : int -> unit) ~(on_data : int -> bool -> unit) : stats =
  let s = { insts = 0; datas = 0; records = 0 } in
  let n = Array.length words in
  let pos = ref 0 in
  while !pos < n do
    let rec_addr = words.(!pos) in
    (match Bbtable.find table rec_addr with
    | None ->
      raise
        (Corrupt (Printf.sprintf "word %d: 0x%x is not a block record" !pos rec_addr))
    | Some e ->
      if !pos + 1 >= n then raise (Corrupt "truncated record");
      let len = words.(!pos + 1) in
      if len <> e.Bbtable.ninsns then
        raise
          (Corrupt
             (Printf.sprintf "word %d: length %d does not match table (%d)"
                !pos len e.Bbtable.ninsns));
      s.records <- s.records + 1;
      pos := !pos + 2;
      let next = ref 0 in
      Array.iter
        (fun (p, _bytes, is_load) ->
          while !next <= p do
            on_inst (e.Bbtable.orig_addr + (4 * !next));
            s.insts <- s.insts + 1;
            incr next
          done;
          if !pos >= n then raise (Corrupt "truncated data words");
          on_data words.(!pos) is_load;
          s.datas <- s.datas + 1;
          incr pos)
        e.Bbtable.mems;
      while !next < e.Bbtable.ninsns do
        on_inst (e.Bbtable.orig_addr + (4 * !next));
        s.insts <- s.insts + 1;
        incr next
      done)
  done;
  s
