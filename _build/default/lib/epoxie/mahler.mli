(** Mahler-style instrumentation: the Tunix/Titan system (paper §3.4).

    Registers are RESERVED at code generation time rather than stolen, so
    trace writes are short inline sequences with no hazard cases; block
    records carry the block length inline (two words), the format §3.5
    replaced with one-word records plus a static table. *)

open Systrace_isa
open Systrace_tracing

exception Reserved_register_used of string
(** Raised when code violates the Tunix compiler contract: a reserved
    register ($t7-$t9, $at) is used, or a memory instruction sits in a
    delay slot. *)

type bb_desc = {
  anchor : string;
  orig_index : int;
  ninsns : int;
  mems : (int * int * bool) array;
}

val instrument_obj : Objfile.t -> Objfile.t * bb_desc list

val instrument_modules :
  Objfile.t list -> Objfile.t list * (string * bb_desc list) list

val expansion : original:Objfile.t list -> instrumented:Objfile.t list -> float

(** {2 Tunix trace parsing} *)

exception Corrupt of string

type stats = {
  mutable insts : int;
  mutable datas : int;
  mutable records : int;
}

val parse :
  table:Bbtable.t ->
  int array ->
  on_inst:(int -> unit) ->
  on_data:(int -> bool -> unit) ->
  stats
(** Parse a Tunix-format trace; the inline length words are validated
    against the table (part of the format's redundancy). *)
