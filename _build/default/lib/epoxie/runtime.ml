(* The tracing runtime: bbtrace and memtrace.

   These routines are part of the tracing system and are never themselves
   instrumented ([no_instrument]).  Register discipline (see
   [Systrace_tracing.Abi]):

     $t7 (xreg_book)   bookkeeping area: saved ra, shadows, scratch slots
     $t8 (xreg_cursor) trace cursor
     $t9 (xreg_limit)  cursor high-water mark
     $at               designated clobber (dead at every call site)
     everything else   preserved via the scratch slots

   bbtrace: called from the 3-instruction block preamble.  Its return
   address IS the trace record for the block.  It reads the trace-word
   count from the special no-op in its own delay slot (at ra-4), checks
   buffer room, stores the record with a single sw, restores the original
   $ra from the bookkeeping area and returns through $at.

   memtrace: called with the memory instruction (or its hazard no-op) in
   the delay slot.  It partially decodes that instruction word — loaded
   from text at ra-4 — to find the base register and 16-bit offset,
   dispatches through a 32-entry jump table to read the base register's
   value, and stores the effective address into the trace buffer.

   The full-buffer path differs by variant:
     - User: raise the trace-flush system call; the kernel drains the
       per-process buffer into the in-kernel buffer and resets the saved
       cursor.
     - Kernel: writes go directly to the in-kernel buffer, which cannot be
       drained at an arbitrary point (paper, §3.3: "servicing the full
       buffer is a complicated operation, and cannot be scheduled
       arbitrarily").  bbtrace sets a need-analysis flag and keeps writing
       into the buffer's slack region; the kernel switches modes at the
       next safe point.  When kernel tracing is off, the cursor runs in a
       one-page discard region and simply wraps. *)

open Systrace_isa
open Systrace_tracing

type variant = User | Kernel

let book = Abi.xreg_book
let cursor = Abi.xreg_cursor
let limit = Abi.xreg_limit

let s0 = Abi.book_scratch0
let s1 = Abi.book_scratch1
let s2 = Abi.book_scratch2
let s5 = Abi.book_scratch5

let make variant : Objfile.t =
  let a = Asm.create ~no_instrument:true "trt" in
  let open Asm in
  (* ---------------- bbtrace ---------------- *)
  global a Epoxie.sym_bbtrace;
  label a Epoxie.sym_bbtrace;
  (* Kernel variant: a nested interrupt would advance the shared cursor
     inside the reserve/fill window, so the whole routine runs with
     interrupts disabled.  ($at is dead at every call site; an interrupt
     in the pre-disable window restores it from the exception frame and
     re-executes.)  User-mode trace writes cannot nest — exceptions are
     handled entirely in the kernel — so the user variant needs none of
     this. *)
  (match variant with
  | Kernel ->
    i a (Insn.Mfc0 (Reg.at, C0_status));
    sw a Reg.at s5 book;
    andi a Reg.at Reg.at 0xFFFE;
    i a (Insn.Mtc0 (Reg.at, C0_status))
  | User -> ());
  sw a Reg.t0 s0 book;
  lw a Reg.t0 (-4) Reg.ra;            (* the count no-op word *)
  andi a Reg.t0 Reg.t0 0xFFFF;        (* word count (always small, positive) *)
  sll a Reg.t0 Reg.t0 2;              (* bytes *)
  addu a Reg.t0 cursor Reg.t0;        (* prospective end of block's trace *)
  sltu a Reg.t0 limit Reg.t0;         (* limit < end ? *)
  bnez a Reg.t0 "$bb_full";
  label a "$bb_resume";
  (* Reserve the slot before filling it: a nested exception between the
     two instructions then writes AFTER the reservation, and the record is
     filled in on resume — no overwrite, no hole. *)
  addiu a cursor cursor 4;
  sw a Reg.ra (-4) cursor;            (* the block record: one store *)
  (match variant with
  | Kernel ->
    lw a Reg.t0 s5 book;
    i a (Insn.Mtc0 (Reg.t0, C0_status))
  | User -> ());
  move a Reg.at Reg.ra;               (* return through $at... *)
  lw a Reg.ra Abi.book_saved_ra book; (* ...restoring the original $ra *)
  i a (Insn.Jr Reg.at);
  lw a Reg.t0 s0 book;                (* delay slot: restore t0 *)
  (* full-buffer path *)
  label a "$bb_full";
  (match variant with
  | User ->
    (* Trace-flush syscall: kernel drains and resets the saved cursor. *)
    sw a Reg.v0 s1 book;
    li a Reg.v0 Abi.sys_trace_flush;
    syscall a;
    lw a Reg.v0 s1 book;
    j_ a "$bb_resume"
  | Kernel ->
    la a Reg.at Abi.sym_ktrace_need;
    lw a Reg.t0 0 Reg.at;
    bnez a Reg.t0 "$bb_resume";       (* already flagged: keep writing *)
    la a Reg.at "ktrace_on";
    lw a Reg.t0 0 Reg.at;
    beqz a Reg.t0 "$bb_wrap";
    (* Tracing on: request analysis at the next safe point, continue into
       the slack region. *)
    la a Reg.at Abi.sym_ktrace_need;
    addiu a Reg.t0 Reg.zero 1;
    sw a Reg.t0 0 Reg.at;
    j_ a "$bb_resume";
    (* Tracing off: the cursor runs in the discard page; wrap it. *)
    label a "$bb_wrap";
    la a Reg.at "ktrace_discard_base";
    lw a cursor 0 Reg.at;
    j_ a "$bb_resume");
  (* ---------------- memtrace ---------------- *)
  global a Epoxie.sym_memtrace;
  label a Epoxie.sym_memtrace;
  sw a Reg.t0 s0 book;
  (match variant with
  | Kernel ->
    (* $at may carry the base register here, so the disable uses t0
       (already saved). *)
    i a (Insn.Mfc0 (Reg.t0, C0_status));
    sw a Reg.t0 s5 book;
    andi a Reg.t0 Reg.t0 0xFFFE;
    i a (Insn.Mtc0 (Reg.t0, C0_status))
  | User -> ());
  sw a Reg.t1 s1 book;
  sw a Reg.t2 s2 book;
  lw a Reg.t0 (-4) Reg.ra;            (* delay-slot instruction word *)
  srl a Reg.t1 Reg.t0 21;
  andi a Reg.t1 Reg.t1 31;            (* base register number *)
  sll a Reg.t1 Reg.t1 2;
  la a Reg.t2 "$mt_table";
  addu a Reg.t2 Reg.t2 Reg.t1;
  lw a Reg.t2 0 Reg.t2;               (* snippet address *)
  sll a Reg.t0 Reg.t0 16;
  i a (Insn.Jr Reg.t2);
  i a (Insn.Shift (SRA, Reg.t0, Reg.t0, 16)); (* delay: t0 = signed offset *)
  (* Per-register snippets: compute t1 = base + offset.  The scratch
     registers read their entry values back from the bookkeeping slots;
     stolen registers can never be a base (steal-rewriting removed them). *)
  for r = 0 to 31 do
    label a (Printf.sprintf "$mt_r%d" r);
    if r = Reg.t0 || r = Reg.t1 || r = Reg.t2 then begin
      let slot = if r = Reg.t0 then s0 else if r = Reg.t1 then s1 else s2 in
      lw a Reg.t1 slot book;
      i a (Insn.J (Sym "$mt_store"));
      addu a Reg.t1 Reg.t1 Reg.t0
    end
    else if r = book || r = cursor || r = limit then
      i a (Insn.Break 0xBAD)
    else begin
      i a (Insn.J (Sym "$mt_store"));
      addu a Reg.t1 r Reg.t0
    end
  done;
  label a "$mt_store";
  addiu a cursor cursor 4;            (* reserve, then fill (see bbtrace) *)
  sw a Reg.t1 (-4) cursor;            (* the data-address entry: one store *)
  (match variant with
  | Kernel ->
    lw a Reg.t0 s5 book;
    i a (Insn.Mtc0 (Reg.t0, C0_status))
  | User -> ());
  lw a Reg.t0 s0 book;
  lw a Reg.t2 s2 book;
  move a Reg.at Reg.ra;
  lw a Reg.ra Abi.book_saved_ra book;
  i a (Insn.Jr Reg.at);
  lw a Reg.t1 s1 book;                (* delay slot *)
  (* ---------------- memtrace_direct_t0 / _t1 ----------------
     For hazard cases whose base register is $at or $ra, inline code
     precomputes the effective address into a borrowed register and these
     routines record it; the borrowed register keeps the address so the
     caller re-issues the memory instruction relative to it.  Keeping the
     cursor update inside the runtime's text range lets the kernel treat
     it as a critical section for buffer drains. *)
  List.iter
    (fun (name, x) ->
      global a name;
      label a name;
      (match variant with
      | Kernel ->
        i a (Insn.Mfc0 (Reg.at, C0_status));
        sw a Reg.at s5 book;
        andi a Reg.at Reg.at 0xFFFE;
        i a (Insn.Mtc0 (Reg.at, C0_status))
      | User -> ());
      addiu a cursor cursor 4;
      sw a x (-4) cursor;
      (match variant with
      | Kernel ->
        lw a Reg.at s5 book;
        i a (Insn.Mtc0 (Reg.at, C0_status))
      | User -> ());
      move a Reg.at Reg.ra;
      lw a Reg.ra Abi.book_saved_ra book;
      i a (Insn.Jr Reg.at);
      nop a)
    [ ("memtrace_direct_t0", Reg.t0); ("memtrace_direct_t1", Reg.t1) ];
  (* Dispatch table *)
  dlabel a "$mt_table";
  for r = 0 to 31 do
    addr a (Printf.sprintf "$mt_r%d" r)
  done;
  to_obj a
