lib/epoxie/pixie.mli: Objfile Systrace_isa
