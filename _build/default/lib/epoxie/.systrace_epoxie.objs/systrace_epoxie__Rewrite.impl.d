lib/epoxie/rewrite.ml: Abi Hashtbl Insn List Objfile Printf Reg Systrace_isa Systrace_tracing
