lib/epoxie/bbmap.mli: Bbtable Epoxie Exe Systrace_isa Systrace_tracing
