lib/epoxie/runtime.mli: Objfile Systrace_isa
