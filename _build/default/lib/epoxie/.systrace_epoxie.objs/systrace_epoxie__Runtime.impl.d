lib/epoxie/runtime.ml: Abi Asm Epoxie Insn List Objfile Printf Reg Systrace_isa Systrace_tracing
