lib/epoxie/mahler.mli: Bbtable Objfile Systrace_isa Systrace_tracing
