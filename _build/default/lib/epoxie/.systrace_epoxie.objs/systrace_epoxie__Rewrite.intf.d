lib/epoxie/rewrite.mli: Insn Objfile Systrace_isa
