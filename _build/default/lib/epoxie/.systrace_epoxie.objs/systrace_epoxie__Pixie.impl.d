lib/epoxie/pixie.ml: Asm Bb Hashtbl Insn List Objfile Reg Systrace_isa
