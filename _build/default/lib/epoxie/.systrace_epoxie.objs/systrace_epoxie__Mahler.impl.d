lib/epoxie/mahler.ml: Abi Array Bb Bbtable Hashtbl Insn List Objfile Printf Reg Rewrite Systrace_isa Systrace_tracing
