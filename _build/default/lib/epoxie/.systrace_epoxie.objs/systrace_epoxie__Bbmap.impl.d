lib/epoxie/bbmap.ml: Bbtable Epoxie Exe List Systrace_isa Systrace_tracing
