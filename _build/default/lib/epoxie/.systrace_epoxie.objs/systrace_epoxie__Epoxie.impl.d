lib/epoxie/epoxie.ml: Abi Array Bb Hashtbl Insn List Objfile Option Printf Reg Rewrite Systrace_isa Systrace_tracing
