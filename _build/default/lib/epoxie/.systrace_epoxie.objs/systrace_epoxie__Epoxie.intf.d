lib/epoxie/epoxie.mli: Insn Objfile Rewrite Systrace_isa
