(* Build the static basic-block lookup table for a traced program.

   epoxie's block descriptors refer to labels; after both the instrumented
   and the original versions of the program are linked, the labels resolve
   to the two addresses the trace parser needs: the record address (in the
   instrumented binary) and the original block address.  Keeping all
   address correction in the linker is the point of rewriting at link time
   (paper, §3.2). *)

open Systrace_isa
open Systrace_tracing

(* [build ~instrumented ~original descs] makes the lookup table for a
   program whose modules were instrumented with [Epoxie.instrument_modules]
   and then linked twice: once instrumented, once original, with the same
   module names. *)
let build ~(instrumented : Exe.t) ~(original : Exe.t)
    (descs : (string * Epoxie.bb_desc list) list) : Bbtable.t =
  let table = Bbtable.create () in
  List.iter
    (fun (mname, ds) ->
      let orig_base = Exe.symbol original (mname ^ "::$text_start") in
      List.iter
        (fun (d : Epoxie.bb_desc) ->
          let record_addr =
            Exe.symbol instrumented (mname ^ "::" ^ d.anchor)
          in
          Bbtable.add table ~record_addr
            {
              Bbtable.orig_addr = orig_base + (d.orig_index * 4);
              ninsns = d.ninsns;
              mems = d.mems;
              flags = 0;
            })
        ds)
    descs;
  table

(* Add a hand-traced routine's record (paper, §3.3: the block lookup
   "creates an opportunity for implementing special behaviors", e.g. for
   hand-traced code).  The record address is where the hand-written code's
   trace word points; the entry describes what the routine does per
   invocation. *)
let add_hand_traced table ~record_addr ~orig_addr ~ninsns ~mems =
  Bbtable.add table ~record_addr
    { Bbtable.orig_addr; ninsns; mems; flags = Bbtable.flag_hand }
