(** Construction of the static basic-block lookup table for a traced
    program (paper §3.5): epoxie's descriptors are resolved against the
    linked instrumented and original executables. *)

open Systrace_isa
open Systrace_tracing

val build :
  instrumented:Exe.t ->
  original:Exe.t ->
  (string * Epoxie.bb_desc list) list ->
  Bbtable.t
(** [build ~instrumented ~original descs] requires both links to use the
    same module names; record addresses come from the instrumented image,
    original block addresses from the original one. *)

val add_hand_traced :
  Bbtable.t ->
  record_addr:int ->
  orig_addr:int ->
  ninsns:int ->
  mems:(int * int * bool) array ->
  unit
(** Register a hand-traced routine's record (paper §3.3): hand-written
    trace code reports [record_addr]; the entry describes the routine's
    references per invocation. *)
