(* epoxie: link-time instrumentation for address tracing (paper, §3.2).

   Rewrites object modules, inserting trace-collecting code at the beginning
   of each basic block and before every memory instruction of the original
   program text:

     fopen:                      fopen:
                                   sw    ra, 0($t7)       ; save ra
                                   jal   bbtrace
                                   addiu $zero, $zero, N  ; trace-word count
                                 $bb17:                   ; <- record address
       addiu sp, sp, -24          addiu sp, sp, -24
       sw    ra, 20(sp)           jal   memtrace
                                   addiu $zero, sp, 20    ; hazard no-op
                                   sw    ra, 20(sp)
       ...                        ...

   The jal to bbtrace captures the address of the first instruction of the
   instrumented block body (its return address) — that address is the
   block's trace record, mapped back to the original binary through the
   static table built by [Bbmap].  The load-immediate-to-$zero in the jal's
   delay slot carries the number of trace words the block generates, which
   bbtrace uses for its buffer-room check.

   Memory instructions normally ride in the delay slot of their jal
   memtrace, executing before memtrace decodes them to recover the
   reference address.  Hazard cases (the instruction reads or writes $ra or
   $at, or a load overwrites its own base register) use a no-op with the
   same base register and offset in the delay slot, with the real
   instruction issued after the call; the rare hazard whose base register
   is the scratch register $at is traced by a short inline sequence
   instead.

   Because all operands are still symbolic at this stage, every address
   correction implied by the text expansion happens statically in the
   linker — the defining property of link-time instrumentation (no runtime
   translation table, unlike pixie). *)

open Systrace_isa
open Systrace_tracing
open Rewrite

type bb_desc = {
  anchor : string;                  (* label at instrumented block body *)
  orig_index : int;                 (* first-insn index in the original module *)
  ninsns : int;                     (* original block length *)
  mems : (int * int * bool) array;  (* original (pos, bytes, is_load) *)
}

let sym_bbtrace = "bbtrace"
let sym_memtrace = "memtrace"

(* ------------------------------------------------------------------ *)
(* Protected ranges: [Objfile.protected] functions are steal-rewritten but
   not traced.  A protected function extends from its label to the next
   global label. *)

let protected_ranges (obj : Objfile.t) =
  let ranges = ref [] in
  let open_at = ref None in
  let idx = ref 0 in
  List.iter
    (function
      | Objfile.Label l ->
        (match !open_at with
        | Some start when Objfile.SSet.mem l obj.globals ->
          ranges := (start, !idx) :: !ranges;
          open_at := None
        | _ -> ());
        if Objfile.SSet.mem l obj.protected then open_at := Some !idx
      | Objfile.Insn _ -> incr idx)
    obj.text;
  (match !open_at with Some start -> ranges := (start, !idx) :: !ranges | None -> ());
  !ranges

let in_ranges ranges i = List.exists (fun (lo, hi) -> i >= lo && i < hi) ranges

(* ------------------------------------------------------------------ *)
(* Memory-instruction wrapping                                          *)

let wrap_mem (m : Insn.t) : titem list =
  let base, off =
    match Insn.mem_base_offset m with
    | Some (b, Insn.Imm o) -> (b, o)
    | Some (_, _) -> raise (Unrewritable "memory offset is symbolic")
    | None -> assert false
  in
  let uses = Insn.uses m and defs = Insn.defs m in
  let hazard =
    List.mem Reg.ra uses || List.mem Reg.ra defs || List.mem Reg.at defs
    || (match m with Insn.Load (_, rt, b, _) -> rt = b | _ -> false)
  in
  if not hazard then
    [ TInsn (Insn.Jal (Sym sym_memtrace), false); TInsn (m, true) ]
  else if base <> Reg.at && base <> Reg.ra then
    [
      TInsn (Insn.Jal (Sym sym_memtrace), false);
      (* No-op in the delay slot carrying the base register and offset for
         memtrace to decode; the real instruction issues after the call. *)
      TInsn (Insn.Alui (ADDIU, Reg.zero, base, Imm off), false);
      TInsn (m, true);
    ]
  else begin
    (* The base register is $at or $ra, which the runtime's exit sequence
       clobbers/restores: compute the effective address up front into a
       borrowed register X ($t0, or $t1 if the instruction touches $t0),
       record it with memtrace_direct_X — the cursor update stays inside
       the runtime's text range, which the kernel's drain logic treats as
       a critical section — and re-issue the instruction X-relative. *)
    let touches r = List.mem r uses || List.mem r defs in
    let x, slot, direct =
      if touches Reg.t0 then (Reg.t1, Abi.book_scratch4, "memtrace_direct_t1")
      else (Reg.t0, Abi.book_scratch3, "memtrace_direct_t0")
    in
    let rebased =
      match m with
      | Insn.Load (w, rt, _, _) -> Insn.Load (w, rt, x, Imm 0)
      | Insn.Store (w, rt, _, _) -> Insn.Store (w, rt, x, Imm 0)
      | Insn.Fload (ft, _, _) -> Insn.Fload (ft, x, Imm 0)
      | Insn.Fstore (ft, _, _) -> Insn.Fstore (ft, x, Imm 0)
      | _ -> assert false
    in
    let restore =
      if List.mem x (Insn.defs rebased) then []
      else [ TInsn (Insn.Load (W, x, Abi.xreg_book, Imm slot), false) ]
    in
    [
      TInsn (Insn.Store (W, x, Abi.xreg_book, Imm slot), false);
      TInsn (Insn.Alui (ADDIU, x, base, Imm off), false);
      TInsn (Insn.Jal (Sym direct), false);
      TInsn (Insn.nop, false);
      TInsn (rebased, true);
    ]
    @ restore
  end

(* Keep the bookkeeping copy of $ra current: bbtrace and memtrace restore
   $ra from the saved slot, so any original instruction that redefines $ra
   mid-block (a load into $ra, an ALU result into $ra) must refresh the
   slot, or a later memtrace in the same block would restore a stale
   value. *)
let resave_ra =
  TInsn (Insn.Store (W, Reg.ra, Abi.xreg_book, Imm Abi.book_saved_ra), false)

let defines_ra i = List.mem Reg.ra (Insn.defs i)

let wrap_pass (items : titem list) : titem list =
  List.concat_map
    (function
      | TLabel _ as l -> [ l ]
      | TInsn (m, true) when Insn.is_mem m ->
        wrap_mem m @ (if defines_ra m then [ resave_ra ] else [])
      | TInsn (i, true) when (not (Insn.is_control i)) && defines_ra i ->
        [ TInsn (i, true); resave_ra ]
      | item -> [ item ])
    items

(* ------------------------------------------------------------------ *)
(* Block segmentation of the original item list                         *)

type segment = {
  labels : string list;          (* labels at the block entry *)
  block : Bb.block;
}

let segments (obj : Objfile.t) =
  let blocks = Bb.analyze obj.text in
  let insns =
    Array.of_list
      (List.filter_map
         (function Objfile.Insn i -> Some i | Objfile.Label _ -> None)
         obj.text)
  in
  (* Collect labels preceding each instruction index. *)
  let labels_at = Hashtbl.create 64 in
  let trailing = ref [] in
  let idx = ref 0 in
  List.iter
    (function
      | Objfile.Label l ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt labels_at !idx) in
        Hashtbl.replace labels_at !idx (cur @ [ l ])
      | Objfile.Insn _ -> incr idx)
    obj.text;
  (match Hashtbl.find_opt labels_at !idx with
  | Some ls when !idx = Array.length insns -> trailing := ls
  | _ -> ());
  let segs =
    List.map
      (fun (b : Bb.block) ->
        {
          labels = Option.value ~default:[] (Hashtbl.find_opt labels_at b.start);
          block = b;
        })
      blocks
  in
  (segs, insns, !trailing)

(* ------------------------------------------------------------------ *)
(* Main entry                                                           *)

let instrument_obj (obj : Objfile.t) : Objfile.t * bb_desc list =
  if obj.no_instrument then (obj, [])
  else begin
    let segs, insns, trailing = segments obj in
    let prot = protected_ranges obj in
    let descs = ref [] in
    let out = ref [] in
    let emit item = out := item :: !out in
    List.iteri
      (fun k seg ->
        let b = seg.block in
        List.iter (fun l -> emit (TLabel l)) seg.labels;
        let body =
          let items = ref [] in
          for i = b.start + b.len - 1 downto b.start do
            items := TInsn (insns.(i), true) :: !items
          done;
          Rewrite.rewrite !items
        in
        if in_ranges prot b.start then
          (* Protected: steal-rewritten, but no tracing code. *)
          List.iter emit body
        else begin
          let anchor = Printf.sprintf "$bb%d" k in
          let nwords = 1 + List.length b.mems in
          emit (TInsn (Insn.Store (W, Reg.ra, Abi.xreg_book, Imm Abi.book_saved_ra), false));
          emit (TInsn (Insn.Jal (Sym sym_bbtrace), false));
          emit (TInsn (Insn.trace_count_nop nwords, false));
          emit (TLabel anchor);
          List.iter emit (wrap_pass body);
          descs :=
            {
              anchor;
              orig_index = b.start;
              ninsns = b.len;
              mems = Array.of_list b.mems |> Array.map (fun (m : Bb.mem_ref) ->
                         (m.pos, m.bytes, m.is_load));
            }
            :: !descs
        end)
      segs;
    List.iter (fun l -> emit (TLabel l)) trailing;
    let text = untag_items (List.rev !out) in
    let obj' = Objfile.validate { obj with text } in
    (obj', List.rev !descs)
  end

(* Instrument a set of modules; returns the rewritten modules plus the
   per-module block descriptors.  The caller links the result together with
   the matching tracing runtime ([Runtime.make]). *)
let instrument_modules (mods : Objfile.t list) :
    Objfile.t list * (string * bb_desc list) list =
  let results = List.map (fun m -> (m.Objfile.name, instrument_obj m)) mods in
  ( List.map (fun (_, (m, _)) -> m) results,
    List.map (fun (name, (_, descs)) -> (name, descs)) results )

(* Text growth factor of instrumentation, over the given modules. *)
let expansion ~original ~instrumented =
  let count ms =
    List.fold_left (fun n m -> n + Objfile.insn_count m) 0 ms
  in
  float_of_int (count instrumented) /. float_of_int (count original)
