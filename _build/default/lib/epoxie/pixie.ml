(* pixie-style instrumentation, as a baseline for text expansion (§3.2).

   pixie rewrites *executables*, not object files, so it lacks symbol and
   relocation information: address correction must partly happen at run
   time through a translation table, and registers cannot be stolen, so
   every trace point must spill and reload working registers around itself.
   The result is the 4-6x text growth the paper contrasts with epoxie's
   1.9-2.3x.

   We emulate the cost structure honestly with a runnable rewriter:
     - per basic block: an 8-instruction preamble that spills two
       registers, loads the buffer cursor from memory, stores the block id,
       bumps and writes back the cursor, and reloads the spills;
     - per memory instruction: a 6-instruction sequence doing the same
       dance to record the effective address.

   The pixie trace buffer is a bump-pointer region whose cursor lives in
   memory (no stolen register to keep it in).  The output format is
   pixie-private; the experiments only use pixie for its text-growth
   numbers and for arithmetic-stall estimation (see
   [Systrace_validate.Predict]), mirroring the paper's use. *)

open Systrace_isa

let sym_cursor = "pixie_cursor"
let sym_spill = "pixie_spill"

(* Runtime support module: cursor + spill slots + a buffer pointer.  The
   buffer region is set up by the harness before running. *)
let runtime ~buf_va ~buf_bytes : Objfile.t =
  let a = Asm.create ~no_instrument:true "pixie_rt" in
  let open Asm in
  global a sym_cursor;
  global a sym_spill;
  global a "pixie_reset";
  dlabel a sym_cursor;
  word a buf_va;
  dlabel a "pixie_limit";
  word a (buf_va + buf_bytes);
  dlabel a sym_spill;
  space a 16;
  (* pixie_reset: rewind the cursor (called by harness shims). *)
  leaf a "pixie_reset" (fun () ->
      la a Reg.t0 sym_cursor;
      li a Reg.t1 buf_va;
      sw a Reg.t1 0 Reg.t0);
  to_obj a

(* The per-block sequence.  [id] is the block's ordinal — pixie has no
   link-time labels to anchor to, which is the point. *)
let bb_seq id : Insn.t list =
  [
    (* spill t0/t1 *)
    Store (W, Reg.t0, Reg.gp, Imm 0);
    Store (W, Reg.t1, Reg.gp, Imm 4);
    (* cursor load, store id, bump, write back *)
    Load (W, Reg.t0, Reg.gp, Imm 8);
    Alui (ORI, Reg.t1, Reg.zero, Imm (id land 0xFFFF));
    Store (W, Reg.t1, Reg.t0, Imm 0);
    Alui (ADDIU, Reg.t0, Reg.t0, Imm 4);
    Store (W, Reg.t0, Reg.gp, Imm 8);
    (* reload spills *)
    Load (W, Reg.t0, Reg.gp, Imm 0);
  ]

let mem_seq base off : Insn.t list =
  [
    Store (W, Reg.t0, Reg.gp, Imm 0);
    Load (W, Reg.t1, Reg.gp, Imm 8);
    Alui (ADDIU, Reg.t0, base, Imm off);
    Store (W, Reg.t0, Reg.t1, Imm 0);
    Alui (ADDIU, Reg.t1, Reg.t1, Imm 4);
    Store (W, Reg.t1, Reg.gp, Imm 8);
  ]

(* pixie's $gp-relative scratch convention: the harness points $gp at a
   private page holding [spill0, spill1, cursor].  This mirrors pixie's
   reliance on a reserved-by-convention register rather than stolen
   registers. *)

let instrument_obj (obj : Objfile.t) ~first_id : Objfile.t * int =
  if obj.Objfile.no_instrument then (obj, first_id)
  else begin
    let blocks = Bb.analyze obj.text in
    let starts = Hashtbl.create 64 in
    List.iteri
      (fun k (b : Bb.block) -> Hashtbl.replace starts b.start (first_id + k))
      blocks;
    let out = ref [] in
    let emit x = out := x :: !out in
    let idx = ref 0 in
    let pending_control = ref false in
    List.iter
      (function
        | Objfile.Label l -> emit (Objfile.Label l)
        | Objfile.Insn insn ->
          let in_slot = !pending_control in
          pending_control := Insn.is_control insn;
          (match Hashtbl.find_opt starts !idx with
          | Some id when not in_slot ->
            List.iter (fun i -> emit (Objfile.Insn i)) (bb_seq id)
          | _ -> ());
          (if Insn.is_mem insn && not in_slot then
             match Insn.mem_base_offset insn with
             | Some (base, Insn.Imm off) when base <> Reg.gp ->
               List.iter (fun i -> emit (Objfile.Insn i)) (mem_seq base off)
             | _ -> ());
          emit (Objfile.Insn insn);
          incr idx)
      obj.text;
    let text = List.rev !out in
    (Objfile.validate { obj with text }, first_id + List.length blocks)
  end

let instrument_modules (mods : Objfile.t list) : Objfile.t list =
  let _, rev =
    List.fold_left
      (fun (id, acc) m ->
        let m', id' = instrument_obj m ~first_id:id in
        (id', m' :: acc))
      (0, []) mods
  in
  List.rev rev

(* Text growth factor, comparable with [Epoxie.expansion]. *)
let expansion ~original ~instrumented =
  let count ms = List.fold_left (fun n m -> n + Objfile.insn_count m) 0 ms in
  float_of_int (count instrumented) /. float_of_int (count original)
