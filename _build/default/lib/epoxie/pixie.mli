(** pixie-style instrumentation baseline (paper §3.2).

    pixie rewrites executables, without symbol/relocation information:
    address correction partly happens at run time and registers cannot be
    stolen, so every trace point spills and reloads registers around
    itself — the 4-6x text growth the paper contrasts with epoxie. *)

open Systrace_isa

val runtime : buf_va:int -> buf_bytes:int -> Objfile.t
(** Cursor, spill slots and a reset helper (the cursor lives in memory —
    no stolen register to keep it in). *)

val instrument_obj : Objfile.t -> first_id:int -> Objfile.t * int
(** Returns the rewritten module and the next free block id. *)

val instrument_modules : Objfile.t list -> Objfile.t list

val expansion : original:Objfile.t list -> instrumented:Objfile.t list -> float
