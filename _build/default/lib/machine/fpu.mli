(** Floating-point latency model (scoreboard): per-register ready times
    and a pipelined unit; stalls are the paper's "arithmetic stalls".
    Expressed in absolute cycles, so FP latency overlaps memory stalls in
    the machine model. *)

type t = {
  ready : int array;
  mutable unit_free : int;
  mutable arith_stalls : int;
  mutable ops : int;
}

val latency : Systrace_isa.Insn.fop -> int
val compare_latency : int

val create : unit -> t
val reset : t -> unit

val wait_regs : t -> now:int -> int list -> int
(** Stall until the listed FP registers are ready. *)

val issue : t -> now:int -> op:Systrace_isa.Insn.fop -> dst:int -> int
val issue_compare : t -> now:int -> int
val set_ready : t -> now:int -> int -> unit
