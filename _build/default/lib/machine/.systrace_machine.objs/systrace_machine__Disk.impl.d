lib/machine/disk.ml: Bytes List String
