lib/machine/tlb.ml: Array Hashtbl List Option
