lib/machine/tlb.mli: Hashtbl
