lib/machine/addr.ml:
