lib/machine/machine.mli: Buffer Bytes Cache Disk Exe Fpu Insn Systrace_isa Tlb Write_buffer
