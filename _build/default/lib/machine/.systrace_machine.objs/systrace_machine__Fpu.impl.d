lib/machine/fpu.ml: Array Insn List Reg Systrace_isa
