lib/machine/machine.ml: Addr Array Buffer Bytes Cache Char Disk Encode Exe Float Fpu Insn Int32 Int64 Printf Reg Stdlib String Systrace_isa Tlb Write_buffer
