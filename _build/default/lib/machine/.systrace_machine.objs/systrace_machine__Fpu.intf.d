lib/machine/fpu.mli: Systrace_isa
