lib/machine/cache.mli:
