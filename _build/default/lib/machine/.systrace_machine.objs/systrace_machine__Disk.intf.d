lib/machine/disk.mli: Bytes
