(* Disk device with DMA and a small request queue.

   Requests complete strictly in order; each takes a seek time plus a
   per-block transfer time.  The queue depth (4) is what lets the kernel
   issue asynchronous read-ahead — the behaviour behind the compress
   prediction error in the paper's Figure 3.  On completion the device
   raises its interrupt line and parks the finished block number until the
   kernel acks it. *)

type request = {
  block : int;
  paddr : int;
  count : int;
  is_write : bool;
  complete_at : int;
}

type t = {
  image : Bytes.t;
  block_bytes : int;
  seek_cycles : int;
  per_block_cycles : int;
  queue_depth : int;
  mutable queue : request list;      (* ascending complete_at *)
  mutable done_blocks : int list;    (* completed, not yet acked *)
  (* staged register values *)
  mutable reg_block : int;
  mutable reg_addr : int;
  mutable reg_count : int;
  mutable reads : int;
  mutable writes : int;
}

let block_bytes = 4096

let create ?(blocks = 2048) ?(seek_cycles = 20000) ?(per_block_cycles = 4000)
    () =
  {
    image = Bytes.make (blocks * block_bytes) '\000';
    block_bytes;
    seek_cycles;
    per_block_cycles;
    queue_depth = 4;
    queue = [];
    done_blocks = [];
    reg_block = 0;
    reg_addr = 0;
    reg_count = 1;
    reads = 0;
    writes = 0;
  }

let nblocks t = Bytes.length t.image / t.block_bytes

(* Host-side access to disk contents (setting up input files, reading
   outputs). *)
let write_image t ~block ~off data =
  Bytes.blit_string data 0 t.image ((block * t.block_bytes) + off)
    (String.length data)

let read_image t ~block ~off ~len =
  Bytes.sub_string t.image ((block * t.block_bytes) + off) len

let busy t = List.length t.queue >= t.queue_depth

(* Submit the staged request. Returns [false] if the queue is full (the
   kernel must retry; in practice it checks DISK_STATUS first). *)
let submit t ~now ~is_write =
  if busy t then false
  else begin
    let prev_done =
      match List.rev t.queue with r :: _ -> r.complete_at | [] -> now
    in
    let start = max now prev_done in
    let complete_at =
      start + t.seek_cycles + (t.reg_count * t.per_block_cycles)
    in
    let r =
      {
        block = t.reg_block;
        paddr = t.reg_addr;
        count = t.reg_count;
        is_write;
        complete_at;
      }
    in
    if is_write then t.writes <- t.writes + 1 else t.reads <- t.reads + 1;
    t.queue <- t.queue @ [ r ];
    true
  end

(* Next completion time, or max_int if idle. *)
let next_event t =
  match t.queue with [] -> max_int | r :: _ -> r.complete_at

(* Process completions up to [now]: perform DMA against [mem]; returns the
   number of requests that completed (each raises the interrupt line). *)
let poll t ~now ~mem ~on_dma =
  let rec go n =
    match t.queue with
    | r :: rest when r.complete_at <= now ->
      t.queue <- rest;
      let len = r.count * t.block_bytes in
      let doff = r.block * t.block_bytes in
      if r.is_write then Bytes.blit mem r.paddr t.image doff len
      else Bytes.blit t.image doff mem r.paddr len;
      on_dma ~paddr:r.paddr ~len;
      t.done_blocks <- t.done_blocks @ [ r.block ];
      go (n + 1)
    | _ -> n
  in
  go 0

(* Completed-but-unacked request at the head, if any. *)
let done_block t = match t.done_blocks with b :: _ -> b | [] -> -1

let ack t =
  match t.done_blocks with
  | _ :: rest -> t.done_blocks <- rest
  | [] -> ()

let has_done t = t.done_blocks <> []
