(* Address-space geometry of the simulated machine.

   The virtual address space is divided into four segments as on the
   DECstation's R3000 (paper, section 4.1):

     kuseg  0x00000000 - 0x7fffffff   TLB-mapped, user accessible
     kseg0  0x80000000 - 0x9fffffff   unmapped, cached, kernel only
     kseg1  0xa0000000 - 0xbfffffff   unmapped, uncached, kernel only
     kseg2  0xc0000000 - 0xffffffff   TLB-mapped, kernel only

   All kernel text and most kernel data live in kseg0 and do not consult the
   TLB; kseg2 holds page-table pages, whose misses (KTLB misses) go through
   the general exception vector. *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

let kuseg_limit = 0x80000000
let kseg0_base = 0x80000000
let kseg1_base = 0xA0000000
let kseg2_base = 0xC0000000

type segment = Kuseg | Kseg0 | Kseg1 | Kseg2

let segment va =
  if va < kuseg_limit then Kuseg
  else if va < kseg1_base then Kseg0
  else if va < kseg2_base then Kseg1
  else Kseg2

(* Direct physical mapping for the unmapped segments. *)
let kseg0_pa va = va - kseg0_base
let kseg1_pa va = va - kseg1_base

let vpn va = va lsr page_shift
let page_offset va = va land page_mask

(* Exception vectors (R3000 layout). *)
let utlb_vector = 0x80000000
let general_vector = 0x80000080

(* Device register window, physical.  Lives above the top of RAM so device
   access never aliases memory. *)
let device_base_pa = 0x01000000

(* Device register offsets (bytes from [device_base_pa]). *)
let dev_console_tx = 0x00
let dev_clock_interval = 0x04
let dev_clock_ack = 0x08
let dev_disk_block = 0x10
let dev_disk_addr = 0x14
let dev_disk_count = 0x18
let dev_disk_cmd = 0x1C
let dev_disk_status = 0x20
let dev_disk_ack = 0x24
let dev_disk_done_block = 0x28
let dev_cycle_lo = 0x30
let dev_cycle_hi = 0x34
let dev_limit = 0x40

(* Interrupt lines: indices within the 8-bit IP/IM field (which occupies
   bits 8..15 of cause/status, so line n corresponds to cause bit n+8). *)
let irq_clock = 2
let irq_disk = 3
