(* Direct-mapped, physically-indexed, physically-tagged cache model.

   Used for both the instruction and the data cache.  The data cache is
   write-through with no write-allocate (stores update a line only if it is
   already present), as on the DECstation 5000/200; the write path itself is
   modelled by [Write_buffer].

   Only hit/miss behaviour is modelled — no data is stored; the simulated
   memory is always authoritative.  The default geometry is scaled down with
   the workloads (see DESIGN.md, "Scale substitutions"). *)

type t = {
  line_shift : int;
  nlines : int;
  tags : int array;            (* -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
}

let create ~size_bytes ~line_bytes =
  if size_bytes mod line_bytes <> 0 then
    invalid_arg "Cache.create: size not a multiple of line size";
  let line_shift =
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    if line_bytes land (line_bytes - 1) <> 0 then
      invalid_arg "Cache.create: line size not a power of two"
    else log2 line_bytes 0
  in
  let nlines = size_bytes / line_bytes in
  if nlines land (nlines - 1) <> 0 then
    invalid_arg "Cache.create: line count not a power of two";
  {
    line_shift;
    nlines;
    tags = Array.make nlines (-1);
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0

let line_index t pa = (pa lsr t.line_shift) land (t.nlines - 1)
let tag t pa = pa lsr t.line_shift

(* Read access: returns [true] on hit; on miss the line is filled. *)
let read t pa =
  let idx = line_index t pa in
  let tg = tag t pa in
  if t.tags.(idx) = tg then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(idx) <- tg;
    false
  end

(* Write access (write-through, no allocate): the cache state only changes
   if the line is absent — then nothing happens.  Returns [true] if the line
   was present. Not counted in hit/miss statistics (write misses are free in
   a no-allocate cache). *)
let write t pa =
  let idx = line_index t pa in
  t.tags.(idx) = tag t pa

(* Invalidate the line containing [pa] (the cache instruction). *)
let invalidate t pa =
  let idx = line_index t pa in
  if t.tags.(idx) = tag t pa then t.tags.(idx) <- -1

let invalidate_all t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let size_bytes t = t.nlines lsl t.line_shift
