(** The machine's software-managed TLB, R3000 style: 64 entries, fully
    associative, random replacement via the free-running Random register
    (entries 0..7 are wired).

    EntryHi: VPN[31:12] | ASID[11:6].
    EntryLo: PFN[31:12] | N[11] | D[10] | V[9] | G[8]. *)

type entry = { mutable hi : int; mutable lo : int }

type t = {
  entries : entry array;
  index : (int, int list) Hashtbl.t;
}

val size : int
val wired : int

val entrylo_n : int
val entrylo_d : int
val entrylo_v : int
val entrylo_g : int

val make_entryhi : vpn:int -> asid:int -> int

val make_entrylo :
  ?noncacheable:bool ->
  ?dirty:bool ->
  ?valid:bool ->
  ?global:bool ->
  pfn:int ->
  unit ->
  int

val hi_vpn : int -> int
val hi_asid : int -> int
val lo_pfn : int -> int
val lo_valid : int -> bool
val lo_dirty : int -> bool
val lo_global : int -> bool
val lo_noncacheable : int -> bool

val create : unit -> t
val reset : t -> unit

val write : t -> int -> hi:int -> lo:int -> unit
val read : t -> int -> int * int
val probe : t -> vpn:int -> asid:int -> int option

type lookup =
  | Hit of { pfn : int; dirty : bool; noncacheable : bool }
  | Miss
  | Invalid
  | Modified

val lookup : t -> vpn:int -> asid:int -> write:bool -> lookup

val random_index : cycle:int -> int
(** The Random register's value at a given cycle (cycles over
    [\[wired, size))). *)
