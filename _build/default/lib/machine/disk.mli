(** Disk device with DMA and a small in-order request queue (depth 4 — what
    lets the kernel issue asynchronous read-ahead).  Completions raise the
    disk interrupt line and park the finished block number until acked. *)

type request = {
  block : int;
  paddr : int;
  count : int;
  is_write : bool;
  complete_at : int;
}

type t = {
  image : Bytes.t;
  block_bytes : int;
  seek_cycles : int;
  per_block_cycles : int;
  queue_depth : int;
  mutable queue : request list;
  mutable done_blocks : int list;
  mutable reg_block : int;
  mutable reg_addr : int;
  mutable reg_count : int;
  mutable reads : int;
  mutable writes : int;
}

val block_bytes : int

val create :
  ?blocks:int -> ?seek_cycles:int -> ?per_block_cycles:int -> unit -> t

val nblocks : t -> int

val write_image : t -> block:int -> off:int -> string -> unit
val read_image : t -> block:int -> off:int -> len:int -> string

val busy : t -> bool
val submit : t -> now:int -> is_write:bool -> bool
val next_event : t -> int
val poll : t -> now:int -> mem:Bytes.t -> on_dma:(paddr:int -> len:int -> unit) -> int
val done_block : t -> int
val ack : t -> unit
val has_done : t -> bool
