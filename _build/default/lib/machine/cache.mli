(** Direct-mapped, physically-indexed cache model of the machine (hit/miss
    behaviour only; simulated memory stays authoritative). *)

type t = {
  line_shift : int;
  nlines : int;
  tags : int array;
  mutable hits : int;
  mutable misses : int;
}

val create : size_bytes:int -> line_bytes:int -> t
val reset : t -> unit

val read : t -> int -> bool
(** [true] on hit; misses fill the line and count. *)

val write : t -> int -> bool
(** Write-through, no write-allocate: [true] iff the line was present; not
    counted in hit/miss statistics. *)

val invalidate : t -> int -> unit
val invalidate_all : t -> unit
val size_bytes : t -> int
