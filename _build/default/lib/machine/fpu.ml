(* Floating-point unit latency model (scoreboard).

   Each FP register has an absolute cycle at which its value becomes
   available; the single FP unit has a busy-until time.  An FP instruction
   whose operands or unit are not ready stalls the CPU — an "arithmetic
   stall" in the paper's terminology.  Because readiness is expressed in
   absolute cycles, FP latency naturally overlaps with cache-miss and
   write-buffer time in the machine model: if the CPU spends cycles stalled
   on memory, FP results ripen meanwhile.  The paper's trace-driven
   simulator treats arithmetic stalls as a separate additive term (estimated
   with pixie), which is exactly why liv's prediction is off in Figure 3. *)

open Systrace_isa

type t = {
  ready : int array;          (* per FP register, absolute cycle *)
  mutable unit_free : int;
  mutable arith_stalls : int; (* total stall cycles charged *)
  mutable ops : int;
}

let latency : Insn.fop -> int = function
  | FADD | FSUB -> 2
  | FMUL -> 5
  | FDIV -> 19
  | FABS | FNEG | FMOV -> 1
  | CVTDW | TRUNCWD -> 3

let compare_latency = 2

let create () =
  { ready = Array.make Reg.nfregs 0; unit_free = 0; arith_stalls = 0; ops = 0 }

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0;
  t.unit_free <- 0;
  t.arith_stalls <- 0;
  t.ops <- 0

(* Wait (at absolute cycle [now]) until [regs] are all ready; returns the
   stall. Used for FP operands and for mfc1/stores of FP registers. *)
let wait_regs t ~now regs =
  let ready =
    List.fold_left (fun acc r -> max acc t.ready.(r)) now regs
  in
  let stall = ready - now in
  t.arith_stalls <- t.arith_stalls + stall;
  stall

(* Issue an FP operation at [now] (after operand stalls): waits for the
   unit, returns the additional stall, and marks the destination register
   busy until the op completes. *)
let issue t ~now ~op ~dst =
  t.ops <- t.ops + 1;
  let start = max now t.unit_free in
  let stall = start - now in
  t.arith_stalls <- t.arith_stalls + stall;
  let finish = start + latency op in
  t.unit_free <- start + 1 (* pipelined: one issue per cycle *);
  t.ready.(dst) <- finish;
  stall

let issue_compare t ~now =
  t.ops <- t.ops + 1;
  let start = max now t.unit_free in
  let stall = start - now in
  t.arith_stalls <- t.arith_stalls + stall;
  t.unit_free <- start + compare_latency;
  stall

(* A write to an FP register from the integer side (mtc1, l.d). *)
let set_ready t ~now r = t.ready.(r) <- now
