(* Write buffer between the write-through data cache and memory.

   Four entries; each retires to memory in [drain_cycles] of memory time,
   strictly in order.  A store issued when all four entries are occupied
   stalls the CPU until the oldest entry retires.  The buffer is modelled as
   a queue of absolute retirement times, which lets write-buffer drain
   overlap with floating-point latency in the machine model — the overlap
   the paper's trace-driven simulator does NOT model, and the cause of the
   liv prediction error in Figure 3. *)

type t = {
  depth : int;
  drain_cycles : int;
  mutable retire_times : int list;  (* ascending absolute cycles *)
  mutable stall_cycles : int;
  mutable stores : int;
}

let create ?(depth = 4) ?(drain_cycles = 6) () =
  { depth; drain_cycles; retire_times = []; stall_cycles = 0; stores = 0 }

let reset t =
  t.retire_times <- [];
  t.stall_cycles <- 0;
  t.stores <- 0

(* Drop entries that have retired by [now]. *)
let expire t now =
  t.retire_times <- List.filter (fun r -> r > now) t.retire_times

(* Issue a store at absolute cycle [now]; returns the stall in cycles the
   CPU suffers (0 if a buffer slot is free). *)
let store t ~now =
  expire t now;
  t.stores <- t.stores + 1;
  let stall, now =
    if List.length t.retire_times < t.depth then (0, now)
    else
      (* Stall until the oldest entry retires. *)
      match t.retire_times with
      | oldest :: rest ->
        let stall = oldest - now in
        t.retire_times <- rest;
        (stall, oldest)
      | [] -> assert false
  in
  let last =
    match List.rev t.retire_times with last :: _ -> last | [] -> now
  in
  let retire = max now last + t.drain_cycles in
  t.retire_times <- t.retire_times @ [ retire ];
  t.stall_cycles <- t.stall_cycles + stall;
  stall

(* Cycles until the buffer is fully drained, e.g. for uncached operations
   that must wait for pending writes. *)
let drain_time t ~now =
  expire t now;
  match List.rev t.retire_times with
  | [] -> 0
  | last :: _ -> max 0 (last - now)

let pending t ~now =
  expire t now;
  List.length t.retire_times
