(* Software-managed TLB, R3000 style.

   64 entries, fully associative, random replacement via the [Random] CP0
   register (a free-running counter cycling over 8..63, so entries 0..7 are
   "wired" and safe for the kernel to pin with tlbwi).

   EntryHi:  VPN[31:12] | ASID[11:6]
   EntryLo:  PFN[31:12] | N[11] | D[10] | V[9] | G[8]

   The trace-driven simulator in [Systrace_tracesim] has its own independent
   TLB model; this one is the "hardware". *)

type entry = {
  mutable hi : int;  (* vpn lsl 12 | asid lsl 6 *)
  mutable lo : int;  (* pfn lsl 12 | flags *)
}

type t = {
  entries : entry array;
  (* vpn -> entry indices, to avoid a 64-way scan per reference *)
  index : (int, int list) Hashtbl.t;
}

let size = 64
let wired = 8

let entrylo_n = 0x800
let entrylo_d = 0x400
let entrylo_v = 0x200
let entrylo_g = 0x100

let make_entryhi ~vpn ~asid = (vpn lsl 12) lor (asid lsl 6)

let make_entrylo ?(noncacheable = false) ?(dirty = true) ?(valid = true)
    ?(global = false) ~pfn () =
  (pfn lsl 12)
  lor (if noncacheable then entrylo_n else 0)
  lor (if dirty then entrylo_d else 0)
  lor (if valid then entrylo_v else 0)
  lor if global then entrylo_g else 0

let hi_vpn hi = hi lsr 12
let hi_asid hi = (hi lsr 6) land 0x3F
let lo_pfn lo = (lo lsr 12) land 0xFFFFF
let lo_valid lo = lo land entrylo_v <> 0
let lo_dirty lo = lo land entrylo_d <> 0
let lo_global lo = lo land entrylo_g <> 0
let lo_noncacheable lo = lo land entrylo_n <> 0

let create () =
  {
    entries = Array.init size (fun _ -> { hi = 0; lo = 0 });
    index = Hashtbl.create 256;
  }

let reset t =
  Array.iteri
    (fun k e ->
      (* Park each entry on a distinct impossible vpn so nothing matches. *)
      e.hi <- make_entryhi ~vpn:(0xFFFFF - k) ~asid:0;
      e.lo <- 0)
    t.entries;
  Hashtbl.reset t.index

let index_remove t vpn k =
  match Hashtbl.find_opt t.index vpn with
  | None -> ()
  | Some l -> (
    match List.filter (fun x -> x <> k) l with
    | [] -> Hashtbl.remove t.index vpn
    | l' -> Hashtbl.replace t.index vpn l')

let index_add t vpn k =
  let l = Option.value ~default:[] (Hashtbl.find_opt t.index vpn) in
  Hashtbl.replace t.index vpn (k :: l)

(* Write entry [k] with the given hi/lo (tlbwi / tlbwr). *)
let write t k ~hi ~lo =
  if k < 0 || k >= size then invalid_arg "Tlb.write: index out of range";
  let e = t.entries.(k) in
  index_remove t (hi_vpn e.hi) k;
  e.hi <- hi;
  e.lo <- lo;
  index_add t (hi_vpn hi) k

let read t k =
  if k < 0 || k >= size then invalid_arg "Tlb.read: index out of range";
  let e = t.entries.(k) in
  (e.hi, e.lo)

(* Probe for a matching entry (tlbp): matches on vpn and (global or asid). *)
let probe t ~vpn ~asid =
  match Hashtbl.find_opt t.index vpn with
  | None -> None
  | Some l ->
    List.find_opt
      (fun k ->
        let e = t.entries.(k) in
        hi_vpn e.hi = vpn && (lo_global e.lo || hi_asid e.hi = asid))
      l

type lookup =
  | Hit of { pfn : int; dirty : bool; noncacheable : bool }
  | Miss          (* no matching entry: TLB refill *)
  | Invalid       (* matching entry with V=0 *)
  | Modified      (* store to a clean page *)

let lookup t ~vpn ~asid ~write:w =
  match probe t ~vpn ~asid with
  | None -> Miss
  | Some k ->
    let e = t.entries.(k) in
    if not (lo_valid e.lo) then Invalid
    else if w && not (lo_dirty e.lo) then Modified
    else
      Hit
        {
          pfn = lo_pfn e.lo;
          dirty = lo_dirty e.lo;
          noncacheable = lo_noncacheable e.lo;
        }

(* The R3000 Random register: decrements every cycle, cycling over
   [wired, size). *)
let random_index ~cycle = wired + (cycle mod (size - wired))
