(** On-disk trace files — the "traces on tape" of the paper's §3.4, for
    sharing and offline replay studies.  Two wire formats: raw words
    (version 1) and {!Compress} delta/varint (version 2); {!load}
    dispatches on the stored version. *)

exception Bad_file of string

val save : ?compress:bool -> string -> int array -> unit
(** Write a captured trace. [~compress:true] (default [false]) selects the
    version-2 delta/varint format — typically 3-6x smaller on real system
    traces. *)

val load : string -> int array
(** Read back either format.
    @raise Bad_file on bad magic, version, or corrupt payload. *)
