lib/tracing/bbtable.ml: Hashtbl List Printf
