lib/tracing/format_.mli:
