lib/tracing/compress.mli:
