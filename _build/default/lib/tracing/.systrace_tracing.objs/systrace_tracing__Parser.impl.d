lib/tracing/parser.ml: Array Bbtable Format_ Hashtbl List Printf
