lib/tracing/parser.mli: Bbtable
