lib/tracing/tracefile.mli:
