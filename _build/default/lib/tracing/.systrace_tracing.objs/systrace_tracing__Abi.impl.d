lib/tracing/abi.ml: Reg Systrace_isa
