lib/tracing/compress.ml: Array Buffer Bytes Char Int32 Printf String
