lib/tracing/format_.ml:
