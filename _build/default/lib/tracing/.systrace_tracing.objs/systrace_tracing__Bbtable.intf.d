lib/tracing/bbtable.mli:
