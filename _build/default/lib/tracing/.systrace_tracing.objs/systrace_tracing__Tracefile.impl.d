lib/tracing/tracefile.ml: Array Bytes Compress Fun Int32 Printf String
