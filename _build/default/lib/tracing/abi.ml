(* Tracing-system ABI shared by epoxie (which emits code against it), the
   tracing runtime (bbtrace/memtrace), the kernel (which owns the buffers),
   and the trace parser.

   Three registers are stolen from instrumented code (paper, section 3.5):

     xreg_cursor ($t8)  current trace-buffer cursor (byte address)
     xreg_limit  ($t9)  high-water limit for the cursor
     xreg_book   ($t7)  bookkeeping-area base

   Original uses of these registers are rewritten by epoxie to use shadow
   values in the bookkeeping area.

   User processes get a bookkeeping page and trace pages at fixed virtual
   addresses; the kernel has a bookkeeping frame stack (one frame per
   exception nesting level) and writes trace directly into the in-kernel
   buffer. *)

open Systrace_isa

let xreg_cursor = Reg.t8
let xreg_limit = Reg.t9
let xreg_book = Reg.t7

let stolen = [ xreg_book; xreg_cursor; xreg_limit ]

(* Bookkeeping-area slot offsets (bytes). *)
let book_saved_ra = 0            (* preamble's saved ra *)
let book_shadow_book = 4         (* shadow of xreg_book  ($t7) *)
let book_shadow_cursor = 8       (* shadow of xreg_cursor ($t8) *)
let book_shadow_limit = 12       (* shadow of xreg_limit ($t9) *)
let book_scratch0 = 16           (* memtrace register spills *)
let book_scratch1 = 20
let book_scratch2 = 24
let book_scratch3 = 28           (* inline-hazard spill ($t0 variant) *)
let book_scratch4 = 32           (* inline-hazard spill ($t1 variant) *)
let book_scratch5 = 36           (* saved status across kernel trace writes *)
let book_size = 40

let shadow_slot r =
  if r = xreg_book then book_shadow_book
  else if r = xreg_cursor then book_shadow_cursor
  else if r = xreg_limit then book_shadow_limit
  else invalid_arg "Abi.shadow_slot: not a stolen register"

(* User-space fixed virtual addresses for the per-process trace pages.
   The bookkeeping page is followed directly by the trace buffer pages.
   Mach 3.0 detects traced programs by their first reference to this
   region (paper, section 3.6). *)
let user_book_va = 0x7E000000
let user_buf_va = user_book_va + 0x1000
let user_buf_pages_default = 4

(* Region test used by the Mach personality's fault handler. *)
let in_user_trace_region va =
  va >= user_book_va && va < user_buf_va + 0x100000

(* Global symbols exported by the kernel for the tracing runtime.  The
   kernel variant of bbtrace checks [ktrace_need] after moving the cursor;
   user-variant overflow goes through the trace-flush syscall instead. *)
let sym_ktrace_book = "ktrace_book_frames"
let sym_ktrace_cursor = "ktrace_cursor"
let sym_ktrace_limit = "ktrace_limit"
let sym_ktrace_need = "ktrace_need_analysis"

(* Syscall numbers (shared with the kernel and workload runtime). *)
let sys_exit = 1
let sys_write = 2
let sys_read = 3
let sys_open = 4
let sys_sbrk = 5
let sys_yield = 6
let sys_gettime = 7
let sys_trace_flush = 8
let sys_trace_ctl = 9

(* Hypercall codes (kernel -> host harness). *)
let hc_halt = 0
let hc_exit_all = 1
let hc_analyze = 2
let hc_panic = 3
let hc_debug = 4
