lib/util/stats.mli:
