lib/util/table.mli:
