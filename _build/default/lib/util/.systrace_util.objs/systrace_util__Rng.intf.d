lib/util/rng.mli:
