(* Plain-text table rendering for the experiment harness.

   The validation harness prints Tables 1-3 and the Figure 3 series in the
   same row layout the paper uses; this module does the column alignment. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~headers ~aligns =
  if List.length headers <> List.length aligns then
    invalid_arg "Table.create: headers/aligns length mismatch";
  { title; headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let add_rule t =
  (* Marker row rendered as a horizontal rule. *)
  t.rows <- [] :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (fun r -> if r <> [] then measure r) rows;
  let buf = Buffer.create 1024 in
  let pad align w s =
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  if t.title <> "" then Buffer.add_string buf (t.title ^ "\n");
  rule ();
  line t.headers;
  rule ();
  List.iter (fun r -> if r = [] then rule () else line r) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
