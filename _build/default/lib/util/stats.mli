(** Statistics helpers for the validation harness. *)

val mean : float list -> float
val variance : float list -> float
val stddev : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val percent_error : measured:float -> predicted:float -> float
(** [|predicted - measured| / measured * 100], the quantity in Figure 3. *)

val geometric_mean : float list -> float

val histogram : lo:float -> hi:float -> bins:int -> float list -> int array
