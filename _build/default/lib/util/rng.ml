(* Deterministic pseudo-random number generator (splitmix64).

   Every stochastic choice in the simulator (random page mapping, workload
   input generation, TLB random-replacement seeds) draws from an explicit
   [Rng.t] so that experiments are reproducible run-to-run.  We do not use
   [Stdlib.Random] anywhere. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A non-negative int with the full 62 bits of entropy available to OCaml's
   native [int]. *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let float t = float_of_int (next t) /. 4611686018427387904.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* 32-bit word of random bits, as a non-negative int. *)
let bits32 t = Int64.to_int (Int64.logand (next_int64 t) 0xFFFFFFFFL)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
