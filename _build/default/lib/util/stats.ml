(* Small statistics helpers used by the validation harness and benches. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let n = float_of_int (List.length xs) in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. (n -. 1.0)

let stddev xs = sqrt (variance xs)

let minimum xs = List.fold_left min infinity xs
let maximum xs = List.fold_left max neg_infinity xs

(* Percent error of a prediction against a measurement, as the paper's
   Figure 3 plots it: |predicted - measured| / measured * 100. *)
let percent_error ~measured ~predicted =
  if measured = 0.0 then if predicted = 0.0 then 0.0 else infinity
  else abs_float (predicted -. measured) /. abs_float measured *. 100.0

let geometric_mean xs =
  match xs with
  | [] -> nan
  | _ ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

(* Histogram of [xs] into [bins] equal-width buckets over [lo, hi). *)
let histogram ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let place x =
    if x >= lo && x < hi then begin
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1
    end
  in
  List.iter place xs;
  counts
