(** Plain-text table rendering for the experiment harness output. *)

type align = Left | Right

type t

val create : title:string -> headers:string list -> aligns:align list -> t
val add_row : t -> string list -> unit

val add_rule : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit
