(** Deterministic splitmix64 pseudo-random number generator.

    All stochastic behaviour in the tracing system and simulators draws from
    an explicit generator so experiments are reproducible. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next : t -> int
(** Next non-negative pseudo-random int (62 bits of entropy). *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val bool : t -> bool

val bits32 : t -> int
(** A 32-bit word of random bits, in [\[0, 2^32)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
