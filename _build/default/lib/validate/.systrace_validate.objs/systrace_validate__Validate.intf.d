lib/validate/validate.mli: Builder Kcfg Memsim Parser Predict Systrace_kernel Systrace_machine Systrace_tracesim Systrace_tracing
