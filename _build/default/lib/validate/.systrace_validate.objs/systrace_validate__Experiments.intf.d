lib/validate/experiments.mli: Suite Systrace_util Systrace_workloads Table Validate
