lib/validate/validate.ml: Builder Kcfg List Memsim Option Parser Predict Printf Systrace_kernel Systrace_machine Systrace_tracesim Systrace_tracing Systrace_util Systrace_workloads
