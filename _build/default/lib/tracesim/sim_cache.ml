(* Direct-mapped cache model for the trace-driven simulator.

   Independently implemented from the machine's cache (Systrace_machine
   .Cache): the paper validates epoxie traces against an independently
   developed simulator, and keeping the implementations separate preserves
   that cross-check.  This version keeps its tag store in a plain int
   array indexed by line, with explicit -1 invalid tags, and counts read
   and write accesses separately. *)

type t = {
  line_bytes : int;
  nlines : int;
  tags : int array;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
}

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let create ~size_bytes ~line_bytes =
  if size_bytes <= 0 || line_bytes <= 0 || size_bytes mod line_bytes <> 0 then
    invalid_arg "Sim_cache.create";
  { line_bytes;
    nlines = size_bytes / line_bytes;
    tags = Array.make (size_bytes / line_bytes) (-1);
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0 }

let line_shift t = log2 t.line_bytes

let read t pa =
  let ln = pa lsr line_shift t in
  let idx = ln mod t.nlines in
  if t.tags.(idx) = ln then begin
    t.read_hits <- t.read_hits + 1;
    true
  end
  else begin
    t.read_misses <- t.read_misses + 1;
    t.tags.(idx) <- ln;
    false
  end

(* Write-through, no write-allocate. *)
let write t pa =
  let ln = pa lsr line_shift t in
  let idx = ln mod t.nlines in
  if t.tags.(idx) = ln then begin
    t.write_hits <- t.write_hits + 1;
    true
  end
  else begin
    t.write_misses <- t.write_misses + 1;
    false
  end

let reset t =
  Array.fill t.tags 0 t.nlines (-1);
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.write_hits <- 0;
  t.write_misses <- 0
