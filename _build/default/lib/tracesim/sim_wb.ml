(* Write-buffer model for the trace-driven simulator.

   Deliberately simpler than the machine's: it advances its own local
   clock by one cycle per reference and by the full penalty on every
   stall, with no notion of overlap with floating-point latency.  The
   missing overlap is exactly the modelling gap the paper identifies for
   liv: "the prediction error is caused by the overlapping of write buffer
   and floating point activity that is not modeled in the simulator". *)

type t = {
  depth : int;
  drain_cycles : int;
  mutable clock : int;            (* local reference clock *)
  mutable retire : int list;      (* ascending retirement times *)
  mutable stall_cycles : int;
  mutable stores : int;
}

let create ?(depth = 4) ?(drain_cycles = 6) () =
  { depth; drain_cycles; clock = 0; retire = []; stall_cycles = 0; stores = 0 }

let reset t =
  t.clock <- 0;
  t.retire <- [];
  t.stall_cycles <- 0;
  t.stores <- 0

(* Advance local time: every reference costs a cycle; read misses freeze
   the CPU (and drain time passes). *)
let tick t n = t.clock <- t.clock + n

let store t =
  t.stores <- t.stores + 1;
  t.retire <- List.filter (fun r -> r > t.clock) t.retire;
  let stall =
    if List.length t.retire < t.depth then 0
    else
      match t.retire with
      | oldest :: rest ->
        let s = oldest - t.clock in
        t.retire <- rest;
        t.clock <- oldest;
        s
      | [] -> assert false
  in
  let last = match List.rev t.retire with l :: _ -> l | [] -> t.clock in
  t.retire <- t.retire @ [ max t.clock last + t.drain_cycles ];
  t.stall_cycles <- t.stall_cycles + stall;
  stall
