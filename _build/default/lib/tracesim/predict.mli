(** Execution-time prediction from a software-collected trace (§5.1):
    predicted cycles are the sum of four sources — CPU cycles, memory
    system stalls, arithmetic stalls (estimated externally, pixie's role)
    and I/O stalls from dilation-scaled idle-loop instruction counts. *)

type breakdown = {
  trace_insts : int;
  synth_insts : int;
  io_idle_extra : int;
  icache_stall : int;
  dcache_stall : int;
  uncached_stall : int;
  wb_stall : int;
  arith_stall : int;
  total_cycles : int;
  seconds : float;
}

val clock_hz : float
(** 25 MHz: the DECstation 5000/200. *)

val make :
  mem:Memsim.stats ->
  parse:Systrace_tracing.Parser.stats ->
  arith_stalls:int ->
  dilation:int ->
  read_miss_penalty:int ->
  uncached_penalty:int ->
  breakdown

val pp : Format.formatter -> breakdown -> unit
