lib/tracesim/sim_wb.mli:
