lib/tracesim/sim_wb.ml: List
