lib/tracesim/sim_cache.ml: Array
