lib/tracesim/memsim.mli: Systrace_tracing
