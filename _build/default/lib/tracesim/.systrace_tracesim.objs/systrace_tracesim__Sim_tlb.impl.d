lib/tracesim/sim_tlb.ml: Array
