lib/tracesim/predict.mli: Format Memsim Systrace_tracing
