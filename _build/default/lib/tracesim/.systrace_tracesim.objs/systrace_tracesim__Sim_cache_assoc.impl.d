lib/tracesim/sim_cache_assoc.ml: Array
