lib/tracesim/predict.ml: Format Memsim Systrace_tracing
