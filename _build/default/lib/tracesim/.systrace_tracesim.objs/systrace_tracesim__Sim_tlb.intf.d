lib/tracesim/sim_tlb.mli:
