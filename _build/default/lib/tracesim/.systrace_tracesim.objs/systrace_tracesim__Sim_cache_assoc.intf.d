lib/tracesim/sim_cache_assoc.mli:
