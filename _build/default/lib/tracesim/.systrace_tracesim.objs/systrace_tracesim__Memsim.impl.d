lib/tracesim/memsim.ml: Parser Sim_cache_assoc Sim_tlb Sim_wb Systrace_tracing
