lib/tracesim/sim_cache.mli:
