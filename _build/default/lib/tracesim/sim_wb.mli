(** Write-buffer model for the trace-driven simulator: deliberately
    simpler than the machine's — no overlap with floating-point latency,
    the gap behind liv's Figure 3 error. *)

type t = {
  depth : int;
  drain_cycles : int;
  mutable clock : int;
  mutable retire : int list;
  mutable stall_cycles : int;
  mutable stores : int;
}

val create : ?depth:int -> ?drain_cycles:int -> unit -> t
val reset : t -> unit

val tick : t -> int -> unit
(** Advance the local reference clock. *)

val store : t -> int
(** Issue a store; returns the stall charged (0 if a slot was free). *)
