(** Direct-mapped, physically-indexed cache model for the trace-driven
    simulator — independently implemented from the machine's cache, as the
    paper validates against an independently developed simulator. *)

type t = {
  line_bytes : int;
  nlines : int;
  tags : int array;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
}

val create : size_bytes:int -> line_bytes:int -> t

val read : t -> int -> bool
(** [true] on hit; misses fill the line. *)

val write : t -> int -> bool
(** Write-through, no write-allocate: state changes only on hit. *)

val reset : t -> unit
