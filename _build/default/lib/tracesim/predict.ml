(* Execution-time prediction from a software-collected trace (§5.1).

   Predicted time is the sum of machine cycles from four sources, exactly
   as in Table 2's caption:

     - CPU cycles: one per instruction executed (trace instructions plus
       the synthesized TLB handler instructions);
     - memory system stalls: cache read-miss penalties, uncached accesses
       and write-buffer stalls, from the trace-driven memory simulation;
     - arithmetic stalls: estimated externally (pixie's role in the
       paper), passed in by the caller, never overlapped;
     - I/O stalls: estimated from idle-loop instruction counts in the
       trace, scaled by the time-dilation factor (instrumented code runs
       ~15x slower, so only 1/15th of the untraced idle instructions are
       recorded — §5.1's worked example).

   Exception entry/exit cycles are deliberately not modelled (a listed
   error source), and neither is FP/write-buffer overlap. *)

type breakdown = {
  trace_insts : int;
  synth_insts : int;
  io_idle_extra : int;       (* additional idle instructions implied by dilation *)
  icache_stall : int;
  dcache_stall : int;
  uncached_stall : int;
  wb_stall : int;
  arith_stall : int;
  total_cycles : int;
  seconds : float;
}

let clock_hz = 25_000_000.0 (* DECstation 5000/200: 25 MHz *)

let make ~(mem : Memsim.stats) ~(parse : Systrace_tracing.Parser.stats)
    ~arith_stalls ~dilation ~read_miss_penalty ~uncached_penalty =
  let icache_stall = mem.Memsim.icache_misses * read_miss_penalty in
  let dcache_stall = mem.Memsim.dcache_read_misses * read_miss_penalty in
  let uncached_stall =
    (mem.Memsim.uncached_reads + mem.Memsim.uncached_writes)
    * uncached_penalty
  in
  let io_idle_extra = parse.Systrace_tracing.Parser.idle_insts * (dilation - 1) in
  let total =
    mem.Memsim.insts + mem.Memsim.synth_insts + io_idle_extra + icache_stall
    + dcache_stall + uncached_stall + mem.Memsim.wb_stalls + arith_stalls
  in
  {
    trace_insts = mem.Memsim.insts;
    synth_insts = mem.Memsim.synth_insts;
    io_idle_extra;
    icache_stall;
    dcache_stall;
    uncached_stall;
    wb_stall = mem.Memsim.wb_stalls;
    arith_stall = arith_stalls;
    total_cycles = total;
    seconds = float_of_int total /. clock_hz;
  }

let pp fmt b =
  Format.fprintf fmt
    "@[<v>instructions: %d (+%d synthesized, +%d idle-scaled)@,\
     icache stall: %d@,dcache stall: %d@,uncached stall: %d@,\
     write-buffer stall: %d@,arithmetic stall: %d@,total cycles: %d \
     (%.4f s)@]"
    b.trace_insts b.synth_insts b.io_idle_extra b.icache_stall b.dcache_stall
    b.uncached_stall b.wb_stall b.arith_stall b.total_cycles b.seconds
