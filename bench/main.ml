(* Benchmark and experiment harness: regenerates every table and figure of
   the paper's evaluation, plus the design-choice ablations from DESIGN.md
   and Bechamel microbenchmarks of the toolchain itself.

     dune exec bench/main.exe                    -- everything
     dune exec bench/main.exe -- table2          -- one experiment
     dune exec bench/main.exe -- -j 8 table2     -- matrix on 8 domains
     dune exec bench/main.exe -- table2 --timing -- serial vs parallel wall
                                                    time (and byte-identity)
   Experiments: table1 table2 figure3 table3 figure2 expansion dilation
                kernel_cpi distortion buffer_sweep pagemap corruption
                faults os_structure drain_ablation trace_format stream
                sweep store serve micro

   `micro`, `stream`, `sweep`, `store`, `serve` and `table2 --timing` merge
   machine-readable results into BENCH_micro.json at the repo root (one
   {target, name, unit, value, jobs} object per benchmark, sorted by
   target/name) so the perf trajectory is tracked across PRs; `--out F`
   redirects them to a named file instead.  `--gate` checks the recorded
   results against the CI perf floors after the requested experiments
   run and exits non-zero on a breach. *)

open Systrace
module Experiments = Systrace_validate.Experiments
module Table = Systrace_util.Table
module Pool = Systrace_util.Pool

let jobs = ref (Pool.default_jobs ())
let quick = ref false

let heading title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_matrix ?entries ~jobs () =
  let t0 = Unix.gettimeofday () in
  let m =
    Experiments.run_matrix ~jobs ?entries
      ~progress:(fun s ->
        Printf.eprintf "  [%6.1fs] running %s\n%!" (Unix.gettimeofday () -. t0) s)
      ()
  in
  Printf.eprintf "  matrix complete in %.1fs (%d jobs)\n%!"
    (Unix.gettimeofday () -. t0)
    jobs;
  m

(* The measured/predicted matrix is expensive; compute it once on demand. *)
let matrix = lazy (run_matrix ~jobs:!jobs ())

let exp_table1 () =
  heading "Table 1: experimental workloads";
  Table.print (Experiments.table1 ())

let exp_table2 () =
  heading "Table 2: run times, measured and predicted";
  Table.print (Experiments.table2 (Lazy.force matrix))

(* Serial vs parallel wall time for the full matrix, with the rendered
   tables checked byte-for-byte identical. *)
let exp_table2_timing () =
  heading "Table 2 timing: serial vs parallel matrix";
  let entries =
    if !quick then
      List.filteri (fun i _ -> i < 3) Workloads.Suite.all
    else Workloads.Suite.all
  in
  let render m =
    Table.render (Experiments.table2 m) ^ Table.render (Experiments.table3 m)
  in
  let serial, t_serial = timed (fun () -> run_matrix ~entries ~jobs:1 ()) in
  let parallel, t_parallel =
    timed (fun () -> run_matrix ~entries ~jobs:!jobs ())
  in
  if render serial <> render parallel then
    failwith "table2 --timing: parallel tables differ from serial tables";
  Table.print (Experiments.table2 parallel);
  (* the pool caps workers at the hardware core count, so report the
     worker count that actually ran, not the -j request *)
  let eff = Pool.effective_jobs ~jobs:!jobs (2 * List.length entries) in
  Printf.printf
    "\nmatrix wall time: serial %.1fs, parallel (%d jobs requested, %d \
     effective) %.1fs -> %.2fx speedup; tables byte-identical\n"
    t_serial !jobs eff t_parallel (t_serial /. t_parallel);
  (* No "parallel speedup" entry: on a box where the pool degrades to one
     worker the ratio measures noise, not scaling.  The wall times stand
     on their own; the gated throughput claim is the sweep's work-saved
     metric, which does not depend on the host's core count. *)
  let entry = Bench_json.entry ~target:"table2" ~jobs:eff in
  Bench_json.record
    [
      entry ~name:"matrix serial" ~unit_:"s" t_serial;
      entry ~name:"matrix parallel" ~unit_:"s" t_parallel;
    ]

let exp_figure3 () =
  heading "Figure 3: error in predicted execution times (Ultrix)";
  Table.print (Experiments.figure3 (Lazy.force matrix))

let exp_table3 () =
  heading "Table 3: TLB misses, measured and predicted";
  Table.print (Experiments.table3 (Lazy.force matrix))

let exp_figure2 () =
  heading "Figure 2: instrumentation by epoxie";
  print_string (Experiments.figure2 ())

let exp_expansion () =
  heading "Text expansion: epoxie vs pixie (paper 3.2)";
  Table.print (Experiments.expansion_table ())

let exp_dilation () =
  heading "Time dilation of instrumented execution (paper 4.1)";
  Table.print (Experiments.dilation_table (Lazy.force matrix))

let exp_kernel_cpi () =
  heading "Kernel vs user CPI (paper 3.4)";
  Table.print (Experiments.kernel_cpi_table (Lazy.force matrix))

let exp_distortion () =
  heading "Instrumentation distortion of the traced system (paper 4.1)";
  Table.print (Experiments.distortion_table ())

let exp_buffer_sweep () =
  heading "Ablation: in-kernel buffer size vs analysis transitions (paper 4.3)";
  Table.print (Experiments.buffer_sweep_table ~jobs:!jobs ())

let exp_pagemap () =
  heading "Ablation: page-mapping policy sensitivity (paper 4.4)";
  Table.print (Experiments.pagemap_table ~jobs:!jobs ())

(* Trace-format ablation (DESIGN.md): one-word records vs Tunix-style
   records that carry the block length inline. *)
let exp_corruption () =
  heading "Defensive tracing: fault injection (paper 4.3)";
  Table.print (Experiments.corruption_table ())

let exp_faults () =
  heading "Defensive tracing: fault kind x injection rate sweep (paper 4.3)";
  let table =
    if !quick then Experiments.faults_table ~trials:8 ~rates:[ 1e-3 ] ()
    else Experiments.faults_table ()
  in
  Table.print table

let exp_os_structure () =
  heading "OS structure vs memory behaviour (companion study [7])";
  Table.print (Experiments.os_structure_table (Lazy.force matrix))

let exp_drain_ablation () =
  heading "Ablation: drain-on-kernel-entry vs flush-when-full (paper 3.1)";
  Table.print (Experiments.drain_ablation_table ())

let exp_trace_format () =
  heading "Ablation: trace format density (one-word vs Tunix records)";
  let e = Workloads.Suite.find "egrep" in
  let words, run =
    capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files
  in
  let s = run.parse_stats in
  let t =
    Table.create ~title:"" ~headers:[ "format"; "words"; "bytes/instruction" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
  in
  let insts = float_of_int s.Tracing.Parser.insts in
  let one_word = Array.length words in
  let tunix = one_word + s.Tracing.Parser.bb_records in
  Table.add_row t
    [ "one-word records (Ultrix/Mach)"; string_of_int one_word;
      Printf.sprintf "%.2f" (4.0 *. float_of_int one_word /. insts) ];
  Table.add_row t
    [ "record + length (Tunix)"; string_of_int tunix;
      Printf.sprintf "%.2f" (4.0 *. float_of_int tunix /. insts) ];
  (* and the stored-trace density when the words leave the machine through
     the delta/varint compressor ("the trace takes less space and less
     time to write", 3.5 — here applied to the tape of 3.4) *)
  let zbytes = String.length (Tracing.Compress.pack words) in
  Table.add_row t
    [ Printf.sprintf "one-word, compressed (%.1fx)"
        (4.0 *. float_of_int one_word /. float_of_int zbytes);
      string_of_int ((zbytes + 3) / 4);
      Printf.sprintf "%.2f" (float_of_int zbytes /. insts) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the toolchain                            *)

(* A TLB-mapped spin loop with a representative instruction mix — one
   load, one store, one taken jump and four ALU ops per iteration (29%
   memory references, 14% branches, close to the classic R3000 workload
   mixes) — with text and data in kuseg behind wired TLB entries, so
   every fetch and data reference exercises the translation path the
   micro-cache accelerates. *)
let spin_machine ~tier =
  let open Isa in
  let a = Asm.create "spin" in
  Asm.global a "_start";
  Asm.label a "_start";
  Asm.la a Reg.t2 "buf";
  Asm.label a "loop";
  (* A counter-update loop: three load-modify-store triples (the
     canonical fusion pattern), a lui+ori constant, an addiu pair, and
     the closing j+nop — every fusion rule is exercised and the
     memory/ALU mix matches a kernel stats loop. *)
  Asm.lw a Reg.t3 0 Reg.t2;
  Asm.addiu a Reg.t3 Reg.t3 1;
  Asm.sw a Reg.t3 0 Reg.t2;
  Asm.lw a Reg.t4 4 Reg.t2;
  Asm.addiu a Reg.t4 Reg.t4 1;
  Asm.sw a Reg.t4 4 Reg.t2;
  Asm.lw a Reg.t5 8 Reg.t2;
  Asm.addiu a Reg.t5 Reg.t5 1;
  Asm.sw a Reg.t5 8 Reg.t2;
  Asm.i a (Insn.Lui (Reg.t6, Insn.Imm 0x12));
  Asm.i a (Insn.Alui (Insn.ORI, Reg.t6, Reg.t6, Insn.Imm 0x34));
  Asm.addiu a Reg.t8 Reg.t8 2;
  Asm.addiu a Reg.t9 Reg.t9 3;
  Asm.i a (Insn.J (Sym "loop"));
  Asm.nop a;
  Asm.dlabel a "buf";
  Asm.space a 64;
  let exe =
    Link.link ~name:"spin" ~text_base:0x1000 ~data_base:0x8000 ~entry:"_start"
      [ Asm.to_obj a ]
  in
  let cfg =
    { Machine.Machine.default_config with
      Machine.Machine.mem_bytes = 1 lsl 20; tier }
  in
  let m = Machine.Machine.create ~cfg () in
  Machine.Machine.load_exe_phys m exe ~text_pa:0x1000 ~data_pa:0x8000;
  (* Identity-map the low pages with wired global TLB entries. *)
  for vpn = 0 to 15 do
    Machine.Tlb.write m.Machine.Machine.tlb vpn
      ~hi:(Machine.Tlb.make_entryhi ~vpn ~asid:0)
      ~lo:(Machine.Tlb.make_entrylo ~dirty:true ~valid:true ~global:true ~pfn:vpn ())
  done;
  (m, exe)

let spin_interp_test ~name ~tier =
  let m, exe = spin_machine ~tier in
  let open Bechamel in
  Test.make ~name
    (Staged.stage (fun () ->
         m.Machine.Machine.pc <- exe.Isa.Exe.entry;
         m.Machine.Machine.npc <- exe.Isa.Exe.entry + 4;
         m.Machine.Machine.next_is_delay <- false;
         ignore (Machine.Machine.run m ~max_insns:50_000)))

let interp_insns = 50_000.0

(* Run a list of bechamel tests and return (name, ns/run) estimates. *)
let run_bechamel ~quota tests =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"systrace" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  let estimates = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        estimates := (name, est) :: !estimates;
        Printf.printf "  %-52s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-52s (no estimate)\n" name)
    results;
  !estimates

(* [run_bechamel], [rounds] times, keeping each test's fastest estimate.
   The interpreter-throughput floor is gated in CI on a shared host whose
   run-to-run swing exceeds the margin over the floor; the minimum over
   independent rounds is the usual low-noise location estimate for a
   throughput micro (anything above the true cost is contention). *)
let run_bechamel_min ~quota ~rounds tests =
  let merge best est =
    List.fold_left
      (fun acc (name, v) ->
        match List.assoc_opt name acc with
        | Some v' when v' <= v -> acc
        | _ -> (name, v) :: List.remove_assoc name acc)
      best est
  in
  let rec go best r =
    if r = 0 then best
    else begin
      if rounds > 1 then Printf.printf "  -- round %d/%d\n" (rounds - r + 1) rounds;
      go (merge best (run_bechamel ~quota tests)) (r - 1)
    end
  in
  go [] rounds

(* bechamel prefixes the group name *)
let strip_group name =
  match String.index_opt name '/' with
  | Some k -> String.sub name (k + 1) (String.length name - k - 1)
  | None -> name

(* The five interpreter tiers on the same 50k-insn mapped spin loop:
   trace superblocks over superblock fusion over the block cache over the
   translation micro-cache, and the bare TLB walk. *)
let interp_tests () =
  [
    spin_interp_test ~name:"machine: interpret 50k mapped insns (trace)"
      ~tier:Machine.Uop.Trace;
    spin_interp_test ~name:"machine: interpret 50k mapped insns (super)"
      ~tier:Machine.Uop.Super;
    spin_interp_test ~name:"machine: interpret 50k mapped insns (bcache)"
      ~tier:Machine.Uop.Bcache;
    spin_interp_test ~name:"machine: interpret 50k mapped insns (tcache)"
      ~tier:Machine.Uop.Tcache;
    spin_interp_test ~name:"machine: interpret 50k mapped insns (no tcache)"
      ~tier:Machine.Uop.Step;
  ]

(* Derived interpreter throughput entries (insns/s) and the speedup
   ratios the perf gate floors. *)
let micro_interp_entries estimates =
  let entry = Bench_json.entry ~target:"micro" in
  let find_est name' =
    List.find_opt (fun (name, _) -> strip_group name = name') estimates
  in
  match
    ( find_est "machine: interpret 50k mapped insns (trace)",
      find_est "machine: interpret 50k mapped insns (super)",
      find_est "machine: interpret 50k mapped insns (bcache)",
      find_est "machine: interpret 50k mapped insns (tcache)",
      find_est "machine: interpret 50k mapped insns (no tcache)" )
  with
  | Some (_, tr), Some (_, sp), Some (_, bc), Some (_, tc), Some (_, notc)
    when tr > 0.0 && sp > 0.0 && bc > 0.0 && tc > 0.0 && notc > 0.0 ->
    let ips est = interp_insns /. (est *. 1e-9) in
    Printf.printf
      "\n  interpreter throughput: %.2f M insns/s trace, %.2f M insns/s \
       superblock-fused, %.2f M insns/s block-cached, %.2f M insns/s with \
       micro-cache, %.2f M insns/s without (trace %.2fx / super %.2fx / \
       bcache %.2fx over tcache; tcache %.2fx over walk)\n"
      (ips tr /. 1e6) (ips sp /. 1e6) (ips bc /. 1e6) (ips tc /. 1e6)
      (ips notc /. 1e6) (tc /. tr) (tc /. sp) (tc /. bc) (notc /. tc);
    [
      entry ~name:"machine: interpreter throughput (trace)" ~unit_:"insns/s"
        (ips tr);
      entry ~name:"machine: interpreter throughput (super)" ~unit_:"insns/s"
        (ips sp);
      entry ~name:"machine: interpreter throughput (bcache)" ~unit_:"insns/s"
        (ips bc);
      entry ~name:"machine: interpreter throughput (tcache)" ~unit_:"insns/s"
        (ips tc);
      entry ~name:"machine: interpreter throughput (no tcache)"
        ~unit_:"insns/s" (ips notc);
      entry ~name:"machine: trace speedup" ~unit_:"x" (tc /. tr);
      entry ~name:"machine: super speedup" ~unit_:"x" (tc /. sp);
      entry ~name:"machine: bcache speedup" ~unit_:"x" (tc /. bc);
      entry ~name:"machine: tcache speedup" ~unit_:"x" (notc /. tc);
    ]
  | _ -> []

(* Fused-run statistics of the spin loop's superblock blocks: how many
   dispatches its steady state costs per instruction, and the run-length
   histogram (1 = scalar uop).  Run the loop once at Super, then walk the
   live block table. *)
let fused_run_entries () =
  let m, exe = spin_machine ~tier:Machine.Uop.Super in
  m.Machine.Machine.pc <- exe.Isa.Exe.entry;
  m.Machine.Machine.npc <- exe.Isa.Exe.entry + 4;
  ignore (Machine.Machine.run m ~max_insns:50_000);
  let hist = Array.make 4 0 in
  let insns = ref 0 and dispatches = ref 0 in
  List.iter
    (fun (b : Machine.Uop.block) ->
      let k = ref 0 in
      let n = Array.length b.Machine.Uop.bb_uops in
      while !k < n do
        let w = Machine.Uop.width b.Machine.Uop.bb_uops.(!k) in
        hist.(w) <- hist.(w) + 1;
        insns := !insns + w;
        incr dispatches;
        k := !k + w
      done)
    (Machine.Machine.cached_blocks m);
  Printf.printf
    "  fused-run length histogram (spin blocks): 1x%d 2x%d 3x%d (%d insns \
     in %d dispatches, %.2f insns/dispatch)\n"
    hist.(1) hist.(2) hist.(3) !insns !dispatches
    (float_of_int !insns /. float_of_int (max 1 !dispatches));
  let entry = Bench_json.entry ~target:"micro" in
  let super_entries =
    [
      entry ~name:"machine: fused runs (len 2)" ~unit_:"runs"
        (float_of_int hist.(2));
      entry ~name:"machine: fused runs (len 3)" ~unit_:"runs"
        (float_of_int hist.(3));
      entry ~name:"machine: insns per dispatch (super)" ~unit_:"insns"
        (float_of_int !insns /. float_of_int (max 1 !dispatches));
    ]
  in
  (* Trace-length statistics of the same loop at the Trace tier: run it
     long enough to cross the hot threshold, then walk the live traces.
     A trace pass performs the budget/horizon/generation/residency checks
     once up front, so insns per dispatch at this tier is instructions
     per trace pass. *)
  let mt, exet = spin_machine ~tier:Machine.Uop.Trace in
  mt.Machine.Machine.pc <- exet.Isa.Exe.entry;
  mt.Machine.Machine.npc <- exet.Isa.Exe.entry + 4;
  ignore (Machine.Machine.run mt ~max_insns:50_000);
  let traces = Machine.Machine.cached_traces mt in
  let tlen_hist = Hashtbl.create 8 in
  let t_insns = ref 0 in
  List.iter
    (fun (tr : Machine.Uop.trace) ->
      let len = Array.length tr.Machine.Uop.tr_blocks in
      Hashtbl.replace tlen_hist len
        (1 + Option.value ~default:0 (Hashtbl.find_opt tlen_hist len));
      t_insns := !t_insns + tr.Machine.Uop.tr_insns)
    traces;
  let ntraces = List.length traces in
  let lens = Hashtbl.fold (fun l c acc -> (l, c) :: acc) tlen_hist [] in
  let lens = List.sort compare lens in
  Printf.printf "  trace-length histogram (spin, blocks per trace):%s (%d \
                 trace(s), %.1f insns per trace pass)\n"
    (if lens = [] then " none formed"
     else
       String.concat ""
         (List.map (fun (l, c) -> Printf.sprintf " %dx%d" l c) lens))
    ntraces
    (float_of_int !t_insns /. float_of_int (max 1 ntraces));
  super_entries
  @ List.map
      (fun (l, c) ->
        entry
          ~name:(Printf.sprintf "machine: traces (len %d blocks)" l)
          ~unit_:"traces" (float_of_int c))
      lens
  @ [
      entry ~name:"machine: insns per dispatch (trace)" ~unit_:"insns"
        (float_of_int !t_insns /. float_of_int (max 1 ntraces));
    ]

(* Dispatch-representation micro justifying the block cache's flat
   pre-decoded array (DESIGN.md §5e): the same pre-decoded 8-uop loop body
   replayed 50k times, dispatched through a one-level variant match vs by
   calling pre-built closures (the closure-threaded alternative).  This
   measures steady-state replay — which is all a hot block does — and does
   not even charge the closure variant its extra block-build cost (one
   environment allocation per decoded instruction). *)
type dispatch_uop =
  | D_add of int * int * int
  | D_addi of int * int * int
  | D_load of int * int * int
  | D_store of int * int * int
  | D_lms of int * int * int * int * int * int
      (* fused load-modify-store: 3 insns, 1 dispatch *)
  | D_add_addi of int * int * int * int * int * int
      (* fused add+addi pair: 2 insns, 1 dispatch *)

let dispatch_tests () =
  let regs = Array.make 32 0 in
  let mem = Array.make 256 0 in
  let body =
    [|
      D_load (9, 8, 0); D_addi (9, 9, 1); D_store (9, 8, 0);
      D_add (10, 10, 9); D_addi (11, 11, 1); D_add (12, 12, 11);
      D_addi (13, 13, 3); D_add (14, 13, 11);
    |]
  in
  (* the same 8 instructions as [body], peephole-fused to 4 dispatches *)
  let body_fused =
    [|
      D_lms (9, 8, 0, 9, 9, 1);
      D_add_addi (10, 10, 9, 11, 11, 1);
      D_add_addi (12, 12, 11, 13, 13, 3);
      D_add (14, 13, 11);
    |]
  in
  let exec_flat u =
    match u with
    | D_add (rd, rs, rt) -> regs.(rd) <- regs.(rs) + regs.(rt)
    | D_addi (rt, rs, imm) -> regs.(rt) <- regs.(rs) + imm
    | D_load (rt, base, off) -> regs.(rt) <- mem.((regs.(base) + off) land 255)
    | D_store (rt, base, off) ->
      mem.((regs.(base) + off) land 255) <- regs.(rt)
    | D_lms (rt, base, off, rt2, rs2, i2) ->
      let v = mem.((regs.(base) + off) land 255) in
      regs.(rt) <- v;
      regs.(rt2) <- regs.(rs2) + i2;
      mem.((regs.(base) + off) land 255) <- regs.(rt)
    | D_add_addi (rd, rs, rt, rt2, rs2, i2) ->
      regs.(rd) <- regs.(rs) + regs.(rt);
      regs.(rt2) <- regs.(rs2) + i2
  in
  let closure_of u =
    match u with
    | D_add (rd, rs, rt) -> fun () -> regs.(rd) <- regs.(rs) + regs.(rt)
    | D_addi (rt, rs, imm) -> fun () -> regs.(rt) <- regs.(rs) + imm
    | D_load (rt, base, off) ->
      fun () -> regs.(rt) <- mem.((regs.(base) + off) land 255)
    | D_store (rt, base, off) ->
      fun () -> mem.((regs.(base) + off) land 255) <- regs.(rt)
    | D_lms _ | D_add_addi _ ->
      (* fused uops only appear in the fused body, which is dispatched
         through the flat match *)
      assert false
  in
  let closures = Array.map closure_of body in
  let n = Array.length body in
  let open Bechamel in
  [
    Test.make ~name:"machine: uop dispatch (flat match)"
      (Staged.stage (fun () ->
           for k = 0 to 49_999 do
             exec_flat (Array.unsafe_get body (k land (n - 1)))
           done));
    Test.make ~name:"machine: uop dispatch (closure-threaded)"
      (Staged.stage (fun () ->
           for k = 0 to 49_999 do
             (Array.unsafe_get closures (k land (n - 1))) ()
           done));
    (* same 50k instructions, half the dispatches: the superblock bet *)
    Test.make ~name:"machine: uop dispatch (fused runs)"
      (Staged.stage (fun () ->
           let nf = Array.length body_fused in
           for k = 0 to 24_999 do
             exec_flat (Array.unsafe_get body_fused (k land (nf - 1)))
           done));
  ]

let exp_micro () =
  heading "Microbenchmarks (Bechamel)";
  if !quick then begin
    (* CI smoke: only the interpreter targets (all four tiers), on a
       small quota.  Records the same derived entries the full run does,
       so the per-tier floors (bcache >= 2x, super >= 2.5x over tcache)
       gate every push. *)
    let estimates = run_bechamel_min ~quota:0.5 ~rounds:3 (interp_tests ()) in
    let entry = Bench_json.entry ~target:"micro" in
    let entries =
      List.rev_map
        (fun (name, est) -> entry ~name:(strip_group name) ~unit_:"ns/run" est)
        estimates
    in
    Bench_json.record
      (entries @ micro_interp_entries estimates @ fused_run_entries ())
  end
  else begin
    let open Bechamel in
    (* trace parsing + memory simulation throughput over a captured trace *)
    let e = Workloads.Suite.find "egrep" in
    let words, run =
      capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files
    in
    let base_cfg = default_memsim_cfg ~system:run.system in
    (* benchmark names are stable keys in BENCH_micro.json: no run-dependent
       detail (word counts, job counts) belongs in them *)
    let parse_test =
      Test.make ~name:"tracesim: parse+simulate trace"
        (Staged.stage (fun () ->
             ignore (replay ~system:run.system ~memsim_cfg:base_cfg words)))
    in
    (* trace parsing alone, without the memory simulation behind it *)
    let parse_only =
      let sys = run.system in
      let kernel_bbs = Option.get sys.Systrace_kernel.Builder.kernel_bbs in
      fun () ->
        let p = Tracing.Parser.create ~kernel_bbs () in
        List.iter
          (fun (pi : Systrace_kernel.Builder.proc_info) ->
            Tracing.Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
          sys.Systrace_kernel.Builder.procs;
        Tracing.Parser.feed p words ~len:(Array.length words)
    in
    let parse_only_test =
      Test.make ~name:"tracing: parse trace" (Staged.stage parse_only)
    in
    (* instrumentation speed *)
    let instr_test =
      let prog = e.Workloads.Suite.program () in
      Test.make ~name:"epoxie: instrument the egrep modules"
        (Staged.stage (fun () ->
             ignore
               (Epoxie.Epoxie.instrument_modules
                  prog.Systrace_kernel.Builder.modules)))
    in
    (* stored-trace compression throughput (dump -z path), both directions *)
    let compress_test =
      Test.make ~name:"compress: pack trace"
        (Staged.stage (fun () -> ignore (Tracing.Compress.pack words)))
    in
    let packed = Tracing.Compress.pack words in
    let uncompress_test =
      Test.make ~name:"compress: unpack trace"
        (Staged.stage (fun () ->
             ignore (Tracing.Compress.unpack ~expect:(Array.length words) packed)))
    in
    (* LZSS pack on the domain pool: 8 copies of the egrep trace give the
       delta stream several 256K blocks to split across workers.  With
       fewer than 2 effective workers the "parallel" pack is just the
       sequential pack over 8x the data — an 8x-slower ns/run row that
       reads as a regression — so, like the store bench's speedup row,
       it is skipped with a note instead of published. *)
    let big_words = Array.concat (List.init 8 (fun _ -> words)) in
    let pack_jobs = Pool.effective_jobs ~jobs:(max 2 !jobs) 8 in
    let par_pack_tests =
      if pack_jobs < 2 then begin
        Printf.printf
          "  (parallel pack skipped: ran with %d worker(s); needs >= 2)\n"
          pack_jobs;
        []
      end
      else
        [
          Test.make ~name:"compress: pack trace (parallel)"
            (Staged.stage (fun () ->
                 ignore (Tracing.Compress.pack ~jobs:pack_jobs big_words)));
        ]
    in
    let tests =
      [
        parse_test; parse_only_test; instr_test; compress_test;
        uncompress_test;
      ]
      @ par_pack_tests @ dispatch_tests ()
    in
    let estimates =
      run_bechamel_min ~quota:1.0 ~rounds:3 (interp_tests ())
      @ run_bechamel ~quota:1.5 tests
    in
    (* machine-readable results, plus derived throughput numbers *)
    let entry = Bench_json.entry ~target:"micro" in
    let entries =
      List.rev_map
        (fun (name, est) ->
          let name = strip_group name in
          (* parallel rows carry the worker count they actually ran
             with, so speedup claims in BENCH_micro.json are auditable *)
          let jobs =
            if name = "compress: pack trace (parallel)" then pack_jobs else 1
          in
          entry ~jobs ~name ~unit_:"ns/run" est)
        estimates
    in
    let find_est name' =
      List.find_opt (fun (name, _) -> strip_group name = name') estimates
    in
    (* compression throughput in words/s (the ns/run entries depend on the
       captured trace's length; these do not) and the compression ratio *)
    let nwords = float_of_int (Array.length words) in
    let compress_derived =
      let throughput ?(jobs = 1) ?(words = nwords) bench_name out_name =
        match find_est bench_name with
        | Some (_, est) when est > 0.0 ->
          let wps = words /. (est *. 1e-9) in
          Printf.printf "  %-52s %12.2f Mwords/s\n" out_name (wps /. 1e6);
          [ Bench_json.entry ~target:"micro" ~jobs ~name:out_name ~unit_:"words/s" wps ]
        | _ -> []
      in
      let ratio = 4.0 *. nwords /. float_of_int (String.length packed) in
      Printf.printf "  %-52s %12.2f x\n" "compress: ratio" ratio;
      throughput "compress: pack trace" "compress: pack throughput"
      @ throughput "compress: unpack trace" "compress: unpack throughput"
      @ throughput ~jobs:pack_jobs ~words:(8.0 *. nwords)
          "compress: pack trace (parallel)"
          "compress: pack throughput (parallel)"
      @ [ entry ~name:"compress: ratio" ~unit_:"x" ratio ]
    in
    Bench_json.record
      (entries @ micro_interp_entries estimates @ fused_run_entries ()
      @ compress_derived)
  end

(* ------------------------------------------------------------------ *)
(* Streaming pipeline: online analysis vs whole-trace materialization   *)

(* The tentpole claim of the streaming refactor, measured: a full predict
   run analyses the trace online (each ANALYZE chunk drives the parser and
   memory simulation as it is drained), so peak resident trace words is
   bounded by the in-kernel buffer, not the trace length — and the stats
   must be exactly those of the materialized capture-then-replay path. *)
(* Interpreter tier ablation: host cost of step vs tcache vs bcache vs
   superblock on a full untraced run, counters asserted identical. *)
let exp_interp () =
  heading "Interpreter execution tiers (step vs tcache vs bcache vs super)";
  Table.print (Experiments.interp_ablation_table ())

let exp_stream () =
  heading "Streaming pipeline: online analysis vs whole-trace materialization";
  let wname = if !quick then "egrep" else "tomcatv" in
  let e = Workloads.Suite.find wname in
  let spec =
    {
      Systrace_validate.Validate.wname;
      files = e.Workloads.Suite.files;
      programs = [ e.Workloads.Suite.program () ];
    }
  in
  (* materialized: capture the whole trace into an array, replay offline *)
  let (words, run), t_capture =
    timed (fun () ->
        capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files)
  in
  let memsim_cfg = default_memsim_cfg ~system:run.system in
  let (mem_m, _), t_replay =
    timed (fun () -> replay ~system:run.system ~memsim_cfg words)
  in
  (* streamed: the same run with parse+simulate online during generation *)
  let p, t_stream =
    timed (fun () -> Validate.predict ~arith_stalls:0 Validate.Ultrix spec)
  in
  (* identical analysis results, or the streaming path is broken *)
  if p.Validate.p_parse <> run.parse_stats then
    failwith "stream: online parse stats differ from materialized run";
  if p.Validate.p_mem <> mem_m then
    failwith "stream: online memory-simulation stats differ from replay";
  let trace_words = Array.length words in
  let peak = p.Validate.p_peak_words in
  let buf_words =
    Systrace_kernel.Builder.default_config.Systrace_kernel.Builder.trace_buf_bytes
    / 4
  in
  if peak > buf_words then
    failwith
      (Printf.sprintf "stream: peak resident words %d exceed buffer (%d words)"
         peak buf_words);
  let wps = float_of_int trace_words /. t_replay in
  let t_mat = t_capture +. t_replay in
  Printf.printf
    "workload %s: %d trace words\n\
    \  materialized: capture %.2fs + replay %.2fs (%.2f Mwords/s), %d words \
     resident\n\
    \  streamed:     %.2fs end-to-end (%.2fx of materialized), peak %d words \
     resident (%.1f%% of trace, buffer holds %d)\n\
    \  parse and memory-simulation stats identical on both paths\n"
    wname trace_words t_capture t_replay (wps /. 1e6) trace_words t_stream
    (t_stream /. t_mat) peak
    (100.0 *. float_of_int peak /. float_of_int trace_words)
    buf_words;
  let entry = Bench_json.entry ~target:"stream" in
  Bench_json.record
    [
      entry ~name:"trace words" ~unit_:"words" (float_of_int trace_words);
      entry ~name:"peak resident words (streamed)" ~unit_:"words"
        (float_of_int peak);
      entry ~name:"replay throughput" ~unit_:"words/s" wps;
      entry ~name:"materialized wall" ~unit_:"s" t_mat;
      entry ~name:"streamed wall" ~unit_:"s" t_stream;
      entry ~name:"streamed/materialized" ~unit_:"x" (t_stream /. t_mat);
    ]

(* ------------------------------------------------------------------ *)
(* Single-pass multi-configuration sweep (Memsim.sweep)                 *)

(* The honest unit of comparison is a single-configuration PASS:
   generate the trace and analyse it online, which is what the streaming
   pipeline does in real use (the trace is never materialized, and
   generation dominates the wall).  Evaluating K configurations the old
   way costs K such passes; the sweep costs one generation plus a
   one-pass multi-configuration analysis.  "work saved"
   = K * single-pass wall / sweep wall is the wall-clock reduction over
   the K independent runs the sweep replaces — unlike the retired
   "parallel speedup" entry it does not depend on how many domains the
   host happens to have. *)
let exp_sweep () =
  heading "Multi-configuration sweep: one trace pass vs per-config passes";
  let wname = if !quick then "egrep" else "tomcatv" in
  let e = Workloads.Suite.find wname in
  let (words, run), t_capture =
    timed (fun () ->
        capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files)
  in
  let base = default_memsim_cfg ~system:run.system in
  (* the 4 x 3 x 3 x 2 grid of the README results table *)
  let grid =
    Tracesim.Memsim.grid ~base
      ~sizes:[ 4096; 8192; 16384; 65536 ]
      ~lines:[ 4; 16; 32 ]
      ~tlb_entries:[ 16; 32; 64 ]
      ~wb_depths:[ 2; 4 ] ()
  in
  let cfgs = List.map snd grid in
  let k = List.length cfgs in
  let _, t_replay =
    timed (fun () -> replay ~system:run.system ~memsim_cfg:base words)
  in
  let (swept, _, _), t_sweep_replay =
    timed (fun () -> replay_sweep ~system:run.system ~memsim_cfgs:cfgs words)
  in
  (* spot-check the sweep against independent single-config replays on a
     few grid points (the qcheck and validate suites prove the full
     equivalence; this guards the numbers printed below) *)
  List.iteri
    (fun i cfg ->
      if i mod (max 1 (k / 3)) = 0 then begin
        let mem, _ = replay ~system:run.system ~memsim_cfg:cfg words in
        if mem <> swept.(i) then
          failwith
            (Printf.sprintf
               "sweep: config %d differs from its single-config replay" i)
      end)
    cfgs;
  let t_single_pass = t_capture +. t_replay in
  let t_sweep_pass = t_capture +. t_sweep_replay in
  let ratio = t_sweep_pass /. t_single_pass in
  let saved = float_of_int k *. t_single_pass /. t_sweep_pass in
  Printf.printf
    "workload %s: %d trace words, %d configurations\n\
    \  single-config pass: generate %.2fs + analyse %.3fs = %.2fs\n\
    \  sweep pass:         generate %.2fs + analyse %.3fs = %.2fs (%.2fx one \
     pass)\n\
    \  analysis alone: %.3fs for %d configs = %.2fx one config's analysis\n\
    \  work saved over %d independent passes: %.1fx\n"
    wname (Array.length words) k t_capture t_replay t_single_pass t_capture
    t_sweep_replay t_sweep_pass ratio t_sweep_replay k
    (t_sweep_replay /. t_replay) k saved;
  (* the sweep is a single-domain pass by construction: record the jobs
     that actually ran, not the -j request *)
  let entry = Bench_json.entry ~target:"sweep" ~jobs:1 in
  Bench_json.record
    [
      entry ~name:"configs" ~unit_:"configs" (float_of_int k);
      entry ~name:"single-pass wall" ~unit_:"s" t_single_pass;
      entry ~name:"sweep wall" ~unit_:"s" t_sweep_pass;
      entry ~name:"sweep/single-pass" ~unit_:"x" ratio;
      entry ~name:"work saved" ~unit_:"x" saved;
      entry ~name:"sweep analysis/single analysis" ~unit_:"x"
        (t_sweep_replay /. t_replay);
    ]

(* ------------------------------------------------------------------ *)
(* Trace store: v3 pack/unpack throughput, compression ratio, indexed   *)
(* seek latency, and the parallel block decode.                         *)

let exp_store () =
  heading "Trace store: v3 throughput, ratio, seek latency, parallel decode";
  let wname = if !quick then "egrep" else "tomcatv" in
  let e = Workloads.Suite.find wname in
  let (words, _run), t_capture =
    timed (fun () ->
        capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files)
  in
  let n = Array.length words in
  let nf = float_of_int n in
  let path = Filename.temp_file "systrace_store" ".strc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* best-of-3 wall times: these floors gate CI on shared hosts *)
      let best f =
        let t = ref infinity in
        for _ = 1 to 3 do
          let _, dt = timed f in
          if dt < !t then t := dt
        done;
        !t
      in
      let t_pack =
        best (fun () ->
            Tracing.Tracefile.save ~compress:true ~version:3 path words)
      in
      let bytes =
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        close_in ic;
        len
      in
      let ratio = 4.0 *. nf /. float_of_int bytes in
      let t_unpack =
        best (fun () ->
            if Array.length (Tracing.Tracefile.load path) <> n then
              failwith "store: v3 load lost words")
      in
      (* full decode through the chunked readers, sequential vs parallel,
         checksummed so a silently wrong decode fails the bench *)
      let sum = Array.fold_left ( + ) 0 words in
      let add acc (a : int array) ~len =
        let s = ref acc in
        for i = 0 to len - 1 do
          s := !s + Array.unsafe_get a i
        done;
        !s
      in
      let t_seq =
        best (fun () ->
            if Tracing.Tracefile.fold_words path ~init:0 ~f:add <> sum then
              failwith "store: sequential fold checksum mismatch")
      in
      let nblocks =
        (n + Tracing.Tracefile.v3_block_words - 1)
        / Tracing.Tracefile.v3_block_words
      in
      let eff = Pool.effective_jobs ~jobs:!jobs nblocks in
      let t_par =
        best (fun () ->
            if
              Tracing.Tracefile.fold_blocks_parallel ~jobs:!jobs path ~init:0
                ~f:add
              <> sum
            then failwith "store: parallel fold checksum mismatch")
      in
      let speedup = t_seq /. t_par in
      (* seek latency: a 1K-word window in the middle of the trace — the
         index jumps to the covering block instead of decoding from the
         start (open + index read + binary search + one or two blocks) *)
      let from = n / 2 in
      let until = min n (from + 1024) in
      let window_sum =
        Tracing.Tracefile.fold_words ~from ~until path ~init:0 ~f:add
      in
      let reps = 25 in
      let t_seek =
        best (fun () ->
            for _ = 1 to reps do
              if
                Tracing.Tracefile.fold_words ~from ~until path ~init:0 ~f:add
                <> window_sum
              then failwith "store: seek window checksum mismatch"
            done)
        /. float_of_int reps
      in
      Printf.printf
        "workload %s: %d trace words (capture %.2fs)\n\
        \  v3 file: %d bytes, %.2fx smaller than raw\n\
        \  pack %.3fs (%.2f Mwords/s), unpack %.3fs (%.2f Mwords/s)\n\
        \  mid-trace 1K-word window: %.2f ms/seek vs %.3fs full decode\n\
        \  full fold: sequential %.3fs, parallel (%d worker(s)) %.3fs -> \
         %.2fx\n"
        wname n t_capture bytes ratio t_pack
        (nf /. t_pack /. 1e6)
        t_unpack
        (nf /. t_unpack /. 1e6)
        (1e3 *. t_seek) t_seq t_seq eff t_par speedup;
      let entry = Bench_json.entry ~target:"store" in
      (* A single-worker pool measures pool overhead, not scaling: don't
         publish a misleading sub-1x "speedup" row at all — the gate
         reads the worker count off "full decode (parallel)" and prints
         its skip note instead. *)
      let speedup_entries =
        if eff < 2 then begin
          Printf.printf
            "  (parallel decode speedup omitted: ran with %d worker(s))\n"
            eff;
          []
        end
        else [ entry ~jobs:eff ~name:"parallel decode speedup" ~unit_:"x"
                 speedup ]
      in
      Bench_json.record
        ([
           entry ~name:"trace words" ~unit_:"words" nf;
           entry ~name:"compression ratio (v3)" ~unit_:"x" ratio;
           entry ~name:"pack throughput" ~unit_:"words/s" (nf /. t_pack);
           entry ~name:"unpack throughput" ~unit_:"words/s" (nf /. t_unpack);
           entry ~name:"seek latency (1K window)" ~unit_:"s" t_seek;
           entry ~name:"full decode (sequential)" ~unit_:"s" t_seq;
           entry ~jobs:eff ~name:"full decode (parallel)" ~unit_:"s" t_par;
         ]
        @ speedup_entries))

(* ------------------------------------------------------------------ *)
(* Trace-ingest daemon: loopback load generator                         *)

(* The serving analog of the paper's keep-up problem, measured: N
   concurrent clients replay a captured v3 trace file at `systrace
   serve` over loopback TCP, each stream scanned online behind the
   bounded per-connection queue.  Reports single-stream vs aggregate
   ingest (the multiplexing win), streams/s, p99 drain latency, and
   peak resident words, then runs a torn-frame fault suite against the
   live daemon — all merged into BENCH_micro.json for the CI gate. *)
let exp_serve () =
  heading "Trace-ingest daemon: concurrent loopback streams";
  let wname = if !quick then "egrep" else "tomcatv" in
  let e = Workloads.Suite.find wname in
  let (words, _run), t_capture =
    timed (fun () ->
        capture_trace [ e.Workloads.Suite.program () ] e.Workloads.Suite.files)
  in
  let n = Array.length words in
  let nstreams = 8 in
  let workers = Pool.effective_jobs ~jobs:(max 2 !jobs) nstreams in
  let path = Filename.temp_file "systrace_serve" ".strc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tracing.Tracefile.save ~compress:true ~version:3 path words;
      let cfg =
        {
          (Serve.Server.default_config Serve.Server.scan_pipeline) with
          Serve.Server.tcp = Some ("127.0.0.1", 0);
          workers;
        }
      in
      let t = Serve.Server.start cfg in
      Fun.protect
        ~finally:(fun () -> Serve.Server.stop t)
        (fun () ->
          let port = Option.get (Serve.Server.tcp_port t) in
          let addr = Serve.Client.Tcp ("127.0.0.1", port) in
          let stream_file () =
            match Serve.Client.run_file addr path with
            | Some r when r.Serve.Client.r_words = n -> r
            | Some r ->
              failwith
                (Printf.sprintf "serve: stream echoed %d of %d words"
                   r.Serve.Client.r_words n)
            | None -> failwith "serve: stream rejected"
          in
          (* single stream, best of 3: the per-connection pipeline's own
             ingest ceiling *)
          let t_single = ref infinity in
          for _ = 1 to 3 do
            let r, dt = timed stream_file in
            if r.Serve.Client.r_dropped_words <> 0 then
              failwith "serve: lossless single stream dropped words";
            if dt < !t_single then t_single := dt
          done;
          (* N concurrent clients, one domain each, all replaying the
             same stored trace *)
          let replies, t_concurrent =
            timed (fun () ->
                let doms =
                  List.init nstreams (fun _ -> Domain.spawn stream_file)
                in
                List.map Domain.join doms)
          in
          List.iter
            (fun r ->
              if r.Serve.Client.r_dropped_words <> 0 then
                failwith "serve: lossless concurrent stream dropped words")
            replies;
          (* fault suite against the live daemon: truncated streams cut
             at deterministic byte offsets must come back as structured
             wire diagnoses, with clean streams still served after *)
          let rng = Systrace_util.Rng.create 7 in
          let bytes = Serve.Wire.encode ~frame_words:4096 words in
          let faults = 10 in
          for _ = 1 to faults do
            let cut = Systrace_util.Rng.int rng (String.length bytes) in
            ignore
              (Serve.Client.send_raw addr (String.sub bytes 0 cut)
                : string option)
          done;
          ignore (stream_file () : Serve.Client.reply);
          (* wait for the fault-suite connections to finish server-side *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec quiesce () =
            let s = Serve.Server.stats t in
            if s.Serve.Server.streams_active = 0 then s
            else if Unix.gettimeofday () > deadline then
              failwith "serve: daemon did not quiesce"
            else begin
              Unix.sleepf 0.02;
              quiesce ()
            end
          in
          let s = quiesce () in
          if s.Serve.Server.streams_faulted < faults then
            failwith "serve: torn streams not all diagnosed";
          let nf = float_of_int n in
          let single_wps = nf /. !t_single in
          let agg_wps = float_of_int (nstreams * n) /. t_concurrent in
          let sps = float_of_int nstreams /. t_concurrent in
          Printf.printf
            "workload %s: %d trace words (capture %.2fs), %d workers\n\
            \  single stream: %.3fs (%.2f Mwords/s)\n\
            \  %d concurrent streams: %.3fs -> %.2f streams/s, %.2f \
             Mwords/s aggregate (%.2fx single)\n\
            \  drain latency p50 %.3fms p99 %.3fms max %.3fms\n\
            \  peak resident %d words/stream, %d drains, %d torn streams \
             diagnosed\n"
            wname n t_capture workers !t_single (single_wps /. 1e6) nstreams
            t_concurrent sps (agg_wps /. 1e6) (agg_wps /. single_wps)
            (1e3 *. s.Serve.Server.drain_p50)
            (1e3 *. s.Serve.Server.drain_p99)
            (1e3 *. s.Serve.Server.drain_max)
            s.Serve.Server.peak_resident_words s.Serve.Server.drains
            s.Serve.Server.streams_faulted;
          let entry = Bench_json.entry ~target:"serve" in
          Bench_json.record
            [
              entry ~name:"trace words per stream" ~unit_:"words" nf;
              entry ~name:"concurrent streams" ~unit_:"streams"
                (float_of_int nstreams);
              entry ~name:"single-stream ingest" ~unit_:"words/s" single_wps;
              entry ~jobs:workers ~name:"aggregate ingest" ~unit_:"words/s"
                agg_wps;
              entry ~jobs:workers ~name:"aggregate/single" ~unit_:"x"
                (agg_wps /. single_wps);
              entry ~jobs:workers ~name:"streams per second" ~unit_:"streams/s"
                sps;
              entry ~name:"p99 drain latency" ~unit_:"s"
                s.Serve.Server.drain_p99;
              entry ~name:"peak resident words" ~unit_:"words"
                (float_of_int s.Serve.Server.peak_resident_words);
              entry ~name:"dropped words" ~unit_:"words"
                (float_of_int s.Serve.Server.words_dropped);
              entry ~name:"faulted streams diagnosed" ~unit_:"streams"
                (float_of_int s.Serve.Server.streams_faulted);
            ]))

(* ------------------------------------------------------------------ *)
(* CI perf gate: check the recorded results against hard floors.        *)

let gate () =
  heading "Perf gate";
  let file = Bench_json.path () in
  let entries = Bench_json.load file in
  let failures = ref [] in
  let check msg ok =
    Printf.printf "  %s %s\n" (if ok then "ok  " else "FAIL") msg;
    if not ok then failures := msg :: !failures
  in
  (* Every floor is evaluated — a missing entry counts as a failure, and a
     breach never hides the floors after it — then all failures are
     restated on stderr and the exit status is non-zero if any tripped. *)
  let floors =
    [
      (fun () ->
        match Bench_json.find entries "sweep" "sweep/single-pass" with
        | None ->
          check "sweep 'sweep/single-pass' missing (run `sweep` first)" false
        | Some e ->
          check
            (Printf.sprintf "sweep pass %.2fx <= 2.00x one single-config pass"
               e.Bench_json.value)
            (e.Bench_json.value <= 2.0));
      (fun () ->
        match Bench_json.find entries "sweep" "work saved" with
        | None -> check "sweep 'work saved' missing (run `sweep` first)" false
        | Some e ->
          check
            (Printf.sprintf
               "sweep work saved %.1fx >= 5.0x over independent passes"
               e.Bench_json.value)
            (e.Bench_json.value >= 5.0));
      (fun () ->
        match Bench_json.find entries "stream" "streamed/materialized" with
        | None ->
          check "stream 'streamed/materialized' missing (run `stream` first)"
            false
        | Some e ->
          check
            (Printf.sprintf "streamed/materialized wall %.2fx <= 1.50x"
               e.Bench_json.value)
            (e.Bench_json.value <= 1.5));
      (fun () ->
        (* per-tier interpreter floors, each printed on its own line so a
           breach names the tier that slipped; the full tier table prints
           even when every floor holds, so the perf trajectory is visible
           on every push *)
        match
          ( Bench_json.find entries "micro"
              "machine: interpreter throughput (trace)",
            Bench_json.find entries "micro"
              "machine: interpreter throughput (super)",
            Bench_json.find entries "micro"
              "machine: interpreter throughput (bcache)",
            Bench_json.find entries "micro"
              "machine: interpreter throughput (tcache)" )
        with
        | Some tr, Some s, Some b, Some tc ->
          let tcv = tc.Bench_json.value in
          Printf.printf "  %-8s %14s %16s %8s\n" "tier" "M insns/s"
            "x over tcache" "floor";
          List.iter
            (fun (name, v, floor) ->
              Printf.printf "  %-8s %14.1f %16.2f %8s\n" name (v /. 1e6)
                (v /. tcv)
                (match floor with
                | None -> "-"
                | Some f -> Printf.sprintf "%.1fx" f))
            [
              ("tcache", tcv, None);
              ("bcache", b.Bench_json.value, Some 2.0);
              ("super", s.Bench_json.value, Some 2.5);
              ("trace", tr.Bench_json.value, Some 4.0);
            ];
          check
            (Printf.sprintf
               "bcache interpreter throughput %.1fM insns/s >= 2x tcache \
                %.1fM insns/s"
               (b.Bench_json.value /. 1e6)
               (tcv /. 1e6))
            (b.Bench_json.value >= 2.0 *. tcv);
          check
            (Printf.sprintf
               "super interpreter throughput %.1fM insns/s >= 2.5x tcache \
                %.1fM insns/s"
               (s.Bench_json.value /. 1e6)
               (tcv /. 1e6))
            (s.Bench_json.value >= 2.5 *. tcv);
          check
            (Printf.sprintf
               "trace interpreter throughput %.1fM insns/s >= 4x tcache \
                %.1fM insns/s"
               (tr.Bench_json.value /. 1e6)
               (tcv /. 1e6))
            (tr.Bench_json.value >= 4.0 *. tcv)
        | _ ->
          check
            "micro interpreter throughput entries missing (run `micro` \
             first)"
            false);
      (fun () ->
        match Bench_json.find entries "store" "compression ratio (v3)" with
        | None ->
          check "store 'compression ratio (v3)' missing (run `store` first)"
            false
        | Some e ->
          check
            (Printf.sprintf "store v3 compression ratio %.2fx >= 4.50x"
               e.Bench_json.value)
            (e.Bench_json.value >= 4.5));
      (fun () ->
        match Bench_json.find entries "store" "parallel decode speedup" with
        | None -> (
          (* the bench omits the entry when it ran single-worker: read
             the worker count off the parallel-decode row, so a 1-core
             host gets the skip note and only a genuinely absent bench
             run fails *)
          match Bench_json.find entries "store" "full decode (parallel)" with
          | Some fd when fd.Bench_json.jobs < 2 ->
            Printf.printf
              "  skip parallel decode speedup floor (ran with %d worker(s); \
               needs >= 2)\n"
              fd.Bench_json.jobs
          | _ ->
            check
              "store 'parallel decode speedup' missing (run `store` first)"
              false)
        | Some e when e.Bench_json.jobs < 2 ->
          (* a single-worker pool measures overhead, not scaling — the
             floor only binds on hosts with >= 2 cores *)
          Printf.printf
            "  skip parallel decode speedup floor (ran with %d worker(s); \
             needs >= 2)\n"
            e.Bench_json.jobs
        | Some e ->
          check
            (Printf.sprintf
               "store parallel decode speedup %.2fx >= 1.50x (%d workers)"
               e.Bench_json.value e.Bench_json.jobs)
            (e.Bench_json.value >= 1.5));
      (fun () ->
        match Bench_json.find entries "serve" "dropped words" with
        | None ->
          check "serve 'dropped words' missing (run `serve` first)" false
        | Some e ->
          check
            (Printf.sprintf "serve lossless run dropped %.0f word(s) (= 0)"
               e.Bench_json.value)
            (e.Bench_json.value = 0.0));
      (fun () ->
        match Bench_json.find entries "serve" "p99 drain latency" with
        | None ->
          check "serve 'p99 drain latency' missing (run `serve` first)" false
        | Some e ->
          check
            (Printf.sprintf "serve p99 drain latency %.1fms <= 500.0ms"
               (1e3 *. e.Bench_json.value))
            (e.Bench_json.value <= 0.5));
      (fun () ->
        match Bench_json.find entries "serve" "streams per second" with
        | None ->
          check "serve 'streams per second' missing (run `serve` first)" false
        | Some e ->
          check
            (Printf.sprintf "serve %.2f streams/s >= 0.50 streams/s"
               e.Bench_json.value)
            (e.Bench_json.value >= 0.5));
      (fun () ->
        match Bench_json.find entries "serve" "aggregate/single" with
        | None ->
          check "serve 'aggregate/single' missing (run `serve` first)" false
        | Some e when e.Bench_json.jobs < 4 ->
          (* concurrent scaling needs cores to scale onto: with this few
             workers the aggregate measures multiplexing overhead, not
             parallel ingest — same policy as the store speedup floor *)
          Printf.printf
            "  skip serve aggregate/single floor (ran with %d worker(s); \
             needs >= 4)\n"
            e.Bench_json.jobs
        | Some e ->
          check
            (Printf.sprintf
               "serve aggregate ingest %.2fx >= 2.00x single stream (%d \
                workers)"
               e.Bench_json.value e.Bench_json.jobs)
            (e.Bench_json.value >= 2.0));
      (fun () ->
        match Bench_json.find entries "serve" "faulted streams diagnosed" with
        | None ->
          check
            "serve 'faulted streams diagnosed' missing (run `serve` first)"
            false
        | Some e ->
          check
            (Printf.sprintf
               "serve fault suite: %.0f torn stream(s) diagnosed >= 10"
               e.Bench_json.value)
            (e.Bench_json.value >= 10.0));
    ]
  in
  List.iter (fun f -> f ()) floors;
  match List.rev !failures with
  | [] -> Printf.printf "  perf gate passed\n"
  | fs ->
    Printf.eprintf "perf gate FAILED (%d floor(s) breached):\n"
      (List.length fs);
    List.iter (fun m -> Printf.eprintf "  %s\n" m) fs;
    exit 1

let experiments =
  [
    ("table1", exp_table1);
    ("table2", exp_table2);
    ("figure3", exp_figure3);
    ("table3", exp_table3);
    ("figure2", exp_figure2);
    ("expansion", exp_expansion);
    ("dilation", exp_dilation);
    ("kernel_cpi", exp_kernel_cpi);
    ("distortion", exp_distortion);
    ("buffer_sweep", exp_buffer_sweep);
    ("pagemap", exp_pagemap);
    ("corruption", exp_corruption);
    ("faults", exp_faults);
    ("os_structure", exp_os_structure);
    ("drain_ablation", exp_drain_ablation);
    ("trace_format", exp_trace_format);
    ("interp", exp_interp);
    ("stream", exp_stream);
    ("sweep", exp_sweep);
    ("store", exp_store);
    ("serve", exp_serve);
    ("micro", exp_micro);
    ("allocprobe", fun () ->
      (* diagnostic: minor words allocated per interpreted instruction *)
      List.iter
        (fun (label, tier) ->
          let open Isa in
          let a = Asm.create "spin" in
          Asm.global a "_start";
          Asm.label a "_start";
          Asm.la a Reg.t2 "buf";
          Asm.label a "loop";
          Asm.lw a Reg.t3 0 Reg.t2;
          Asm.addiu a Reg.t3 Reg.t3 1;
          Asm.sw a Reg.t3 0 Reg.t2;
          Asm.i a (Insn.J (Sym "loop"));
          Asm.nop a;
          Asm.dlabel a "buf";
          Asm.space a 64;
          let exe =
            Link.link ~name:"spin" ~text_base:0x1000 ~data_base:0x8000
              ~entry:"_start" [ Asm.to_obj a ]
          in
          let cfg =
            { Machine.Machine.default_config with
              Machine.Machine.mem_bytes = 1 lsl 20; tier }
          in
          let m = Machine.Machine.create ~cfg () in
          Machine.Machine.load_exe_phys m exe ~text_pa:0x1000 ~data_pa:0x8000;
          for vpn = 0 to 15 do
            Machine.Tlb.write m.Machine.Machine.tlb vpn
              ~hi:(Machine.Tlb.make_entryhi ~vpn ~asid:0)
              ~lo:(Machine.Tlb.make_entrylo ~dirty:true ~valid:true
                     ~global:true ~pfn:vpn ())
          done;
          m.Machine.Machine.pc <- exe.Isa.Exe.entry;
          m.Machine.Machine.npc <- exe.Isa.Exe.entry + 4;
          ignore (Machine.Machine.run m ~max_insns:50_000);
          let w0 = Gc.minor_words () in
          ignore (Machine.Machine.run m ~max_insns:500_000);
          let w1 = Gc.minor_words () in
          Printf.printf "%s: %.3f minor words/insn\n" label
            ((w1 -. w0) /. 500_000.0))
        [ ("super", Machine.Uop.Super); ("bcache", Machine.Uop.Bcache);
          ("tcache", Machine.Uop.Tcache) ]);
  ]

let usage () =
  Printf.eprintf
    "usage: %s [-j N] [experiment] [--timing] [--quick] [--gate]\n\
     available: %s\n\
     -j N      run the experiment matrix on N domains (default %d)\n\
     --timing  (with table2) serial vs parallel wall time + byte-identity\n\
     --quick   (with faults/stream/sweep/store/serve/table2/micro) smaller\n\
    \          runs, for CI smoke\n\
     --out F   merge machine-readable results into F, not BENCH_micro.json\n\
     --gate    after any requested experiment, fail if the recorded results\n\
    \          breach the CI perf floors (sweep <= 2x single pass, sweep\n\
    \          work saved >= 5x, stream ratio, per-tier interpreter\n\
    \          throughput (bcache >= 2x, super >= 2.5x over tcache),\n\
    \          store v3 ratio >= 4.5x, parallel decode >= 1.5x on >= 2\n\
    \          cores, serve lossless/latency/fault-suite floors and\n\
    \          aggregate ingest >= 2x single stream on >= 4 workers)\n"
    Sys.argv.(0)
    (String.concat " " (List.map fst experiments))
    (Pool.default_jobs ());
  exit 1

let () =
  let name = ref None in
  let timing = ref false in
  let gating = ref false in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ -> usage ())
    | "--timing" :: rest ->
      timing := true;
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--gate" :: rest ->
      gating := true;
      parse rest
    | "--out" :: file :: rest ->
      Bench_json.set_path file;
      parse rest
    | arg :: rest when List.mem_assoc arg experiments && !name = None ->
      name := Some arg;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match (!name, !timing) with
  | None, false when !gating -> () (* bare --gate: check existing results *)
  | None, false -> List.iter (fun (_, f) -> f ()) experiments
  | None, true -> usage ()
  | Some "table2", true -> exp_table2_timing ()
  | Some _, true -> usage ()
  | Some name, false -> (List.assoc name experiments) ());
  if !gating then gate ()
