(* Machine-readable benchmark results: BENCH_micro.json at the repo root,
   a JSON array of {name, unit, value} objects — one line per benchmark —
   so the perf trajectory is tracked across PRs.

   Writers merge: an invocation replaces entries it re-measured (matched
   by name) and keeps the rest, so `main.exe micro` and `main.exe table2
   --timing` can both contribute to the same file.  The file is our own
   output, so the loader only has to parse the exact format [save]
   writes. *)

type entry = { name : string; unit_ : string; value : float }

(* The repo root is the nearest ancestor of the cwd with a dune-project;
   falls back to the cwd (e.g. when installed elsewhere). *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Sys.getcwd () else up parent
  in
  up (Sys.getcwd ())

(* `main.exe --out FILE` redirects results to a named file instead of the
   default BENCH_micro.json — so CI smoke runs or side experiments don't
   clobber the tracked perf trajectory. *)
let out_override = ref None
let set_path file = out_override := Some file

let path () =
  match !out_override with
  | Some file -> file
  | None -> Filename.concat (repo_root ()) "BENCH_micro.json"

let render_entry e =
  (* %S escaping covers quotes and backslashes; benchmark names contain no
     control characters, so this stays valid JSON. *)
  Printf.sprintf "  {\"name\": %S, \"unit\": %S, \"value\": %.6g}" e.name
    e.unit_ e.value

let parse_line line =
  match
    Scanf.sscanf line " {\"name\": %S, \"unit\": %S, \"value\": %f"
      (fun name unit_ value -> { name; unit_; value })
  with
  | e -> Some e
  | exception _ -> None

let load file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let entries = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let save file entries =
  let oc = open_out file in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map render_entry entries));
  output_string oc "\n]\n";
  close_out oc

(* Merge [entries] into the results file: re-measured names are replaced
   in place, new names append. *)
let record entries =
  let file = path () in
  let old = load file in
  let fresh_names = List.map (fun e -> e.name) entries in
  let kept =
    List.filter (fun e -> not (List.mem e.name fresh_names)) old
  in
  save file (kept @ entries);
  Printf.printf "  wrote %d benchmark result(s) to %s\n%!"
    (List.length entries) file
