(* Machine-readable benchmark results: BENCH_micro.json at the repo root,
   a JSON array of {target, name, unit, value, jobs} objects — one line
   per benchmark — so the perf trajectory is tracked across PRs.

   [target] names the experiment that produced the entry ("micro",
   "stream", "table2"); [jobs] is the number of worker domains actually
   in effect (1 for single-domain measurements).  Benchmark names carry
   no run-dependent detail (no word counts, no job counts) so the same
   measurement always lands on the same key.

   Writers merge: an invocation replaces the entries it re-measured
   (matched by target + name) and keeps the rest, so `main.exe micro`
   and `main.exe table2 --timing` both contribute to the same file.
   [save] sorts by (target, name), so regenerating the file is
   diff-stable whatever order the experiments ran in.  The file is our
   own output, so the loader only has to parse the exact format [save]
   writes. *)

type entry = {
  target : string;
  name : string;
  unit_ : string;
  value : float;
  jobs : int;
}

let entry ?(jobs = 1) ~target ~name ~unit_ value =
  { target; name; unit_; value; jobs }

(* The repo root is the nearest ancestor of the cwd with a dune-project;
   falls back to the cwd (e.g. when installed elsewhere). *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Sys.getcwd () else up parent
  in
  up (Sys.getcwd ())

(* `main.exe --out FILE` redirects results to a named file instead of the
   default BENCH_micro.json — so CI smoke runs or side experiments don't
   clobber the tracked perf trajectory. *)
let out_override = ref None
let set_path file = out_override := Some file

let path () =
  match !out_override with
  | Some file -> file
  | None -> Filename.concat (repo_root ()) "BENCH_micro.json"

let render_entry e =
  (* %S escaping covers quotes and backslashes; benchmark names contain no
     control characters, so this stays valid JSON. *)
  Printf.sprintf
    "  {\"target\": %S, \"name\": %S, \"unit\": %S, \"value\": %.6g, \
     \"jobs\": %d}"
    e.target e.name e.unit_ e.value e.jobs

let parse_line line =
  match
    Scanf.sscanf line
      " {\"target\": %S, \"name\": %S, \"unit\": %S, \"value\": %f, \
       \"jobs\": %d"
      (fun target name unit_ value jobs ->
        { target; name; unit_; value; jobs })
  with
  | e -> Some e
  | exception _ -> None

let load file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let entries = ref [] in
    (try
       while true do
         match parse_line (input_line ic) with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let save file entries =
  let entries =
    List.sort
      (fun a b ->
        match compare a.target b.target with
        | 0 -> compare a.name b.name
        | c -> c)
      entries
  in
  let oc = open_out file in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map render_entry entries));
  output_string oc "\n]\n";
  close_out oc

(* Merge [entries] into the results file: re-measured (target, name) keys
   are replaced, the rest kept; the saved file is sorted either way. *)
let record entries =
  let file = path () in
  let old = load file in
  let fresh = List.map (fun e -> (e.target, e.name)) entries in
  let kept =
    List.filter (fun e -> not (List.mem (e.target, e.name) fresh)) old
  in
  save file (kept @ entries);
  Printf.printf "  wrote %d benchmark result(s) to %s\n%!"
    (List.length entries) file

(* [find entries target name] — gate checks and derived metrics. *)
let find entries target name =
  List.find_opt (fun e -> e.target = target && e.name = name) entries
