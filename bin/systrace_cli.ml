(* systrace command-line interface.

     systrace list                       -- the workload suite
     systrace run WORKLOAD [--os mach]   -- untraced run, ground-truth counters
     systrace trace WORKLOAD [-n N]      -- traced run, print trace stats
                                            (and the first N references)
     systrace validate WORKLOAD          -- measured vs predicted, one workload
     systrace matrix [-j N]              -- the full validation matrix on a
                                            pool of N domains
     systrace sweep WORKLOAD FILE        -- evaluate a geometry grid over a
                                            stored trace in one pass
     systrace check FILE [-w WORKLOAD]   -- validate a stored trace; print
                                            the defensive-tracing diagnoses
     systrace slice FILE --from A --until B [-o OUT]
                                         -- extract a word window of a stored
                                            trace without a full decode
     systrace serve --unix PATH [--tcp PORT] [--ctl PATH]
                                         -- trace-ingest daemon: concurrent
                                            streams, online analysis,
                                            bounded-queue backpressure
     systrace serve --send FILE --connect unix:PATH
                                         -- stream a stored trace at a daemon
     systrace serve --stats --ctl PATH   -- a running daemon's counters
*)

open Cmdliner
open Systrace

let os_conv =
  Arg.enum [ ("ultrix", Validate.Ultrix); ("mach", Validate.Mach) ]

let os_arg =
  Arg.(
    value
    & opt os_conv Validate.Ultrix
    & info [ "os" ] ~docv:"OS" ~doc:"System personality: ultrix or mach.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Page-map / RNG seed.")

let tier_conv =
  Arg.enum
    (List.map (fun t -> (Machine.Uop.tier_name t, t)) Machine.Uop.all_tiers)

let tier_arg =
  Arg.(
    value
    & opt (some tier_conv) None
    & info [ "interp-tier" ] ~docv:"TIER"
        ~doc:
          "Interpreter execution tier: $(b,step) (step-at-a-time oracle, \
           full TLB walk per access), $(b,tcache) (+ last-translation \
           micro-cache), $(b,bcache) (+ decode-once basic-block execution \
           cache), $(b,super) (+ superblock fusion; the default), or \
           $(b,trace) (+ trace superblocks over the successor memo with \
           cross-seam register caching).  Purely a host-side accelerator \
           choice: simulation results are identical at every tier.")

let no_bcache_arg =
  Arg.(
    value & flag
    & info [ "no-bcache" ]
        ~doc:
          "Deprecated alias for $(b,--interp-tier tcache): interpret \
           without the basic-block execution cache (slower; simulation \
           results are identical).  Rejected when $(b,--interp-tier) is \
           also given.")

let trace_len_arg =
  Arg.(
    value
    & opt int Machine.Machine.default_config.Machine.Machine.trace_len
    & info [ "trace-len" ] ~docv:"BLOCKS"
        ~doc:
          "Maximum basic blocks stitched into one trace superblock at \
           $(b,--interp-tier trace) (4-16).  Ignored at lower tiers.")

(* The tier is purely a host-side accelerator, so the only thing the
   flags change is the machine config the system is built with.
   [Uop.tier_of_cli] owns the --interp-tier / --no-bcache resolution
   (both at once is an error: the alias used to lose silently). *)
let machine_cfg_of ~tier ~no_bcache ~trace_len =
  let tier =
    match Machine.Uop.tier_of_cli ~tier ~no_bcache with
    | Ok t -> t
    | Error msg ->
      Printf.eprintf "systrace: %s\n" msg;
      exit 2
  in
  if trace_len < 4 || trace_len > 16 then begin
    Printf.eprintf "systrace: --trace-len must be in 4..16 (got %d)\n"
      trace_len;
    exit 2
  end;
  { Machine.Machine.default_config with Machine.Machine.tier; trace_len }

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,systrace list)).")

let find_workload name =
  match List.find_opt (fun e -> e.Workloads.Suite.name = name) Workloads.Suite.all with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown workload %S; try 'systrace list'\n" name;
    exit 1

let os_of = function Validate.Ultrix -> Ultrix | Validate.Mach -> Mach

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Workloads.Suite.entry) ->
        Printf.printf "%-10s %s\n" e.Workloads.Suite.name
          e.Workloads.Suite.description)
      Workloads.Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the workload suite (Table 1).")
    Term.(const run $ const ())

let run_cmd =
  let run name os seed tier no_bcache trace_len =
    let e = find_workload name in
    let config =
      {
        Systrace_kernel.Builder.default_config with
        Systrace_kernel.Builder.machine_cfg =
          machine_cfg_of ~tier ~no_bcache ~trace_len;
      }
    in
    let sys =
      run_measured ~os:(os_of os) ~seed ~config
        [ e.Workloads.Suite.program () ]
        e.Workloads.Suite.files
    in
    let m = sys.Systrace_kernel.Builder.machine in
    let c = m.Machine.Machine.c in
    Printf.printf "console: %S\n" (Systrace_kernel.Builder.console sys);
    Printf.printf "cycles: %d (%.4f s at 25 MHz)\n" m.Machine.Machine.cycles
      (float_of_int m.Machine.Machine.cycles /. 25e6);
    Printf.printf "instructions: %d (user %d, kernel %d, idle %d)\n"
      c.Machine.Machine.instructions c.Machine.Machine.user_instructions
      c.Machine.Machine.kernel_instructions c.Machine.Machine.idle_instructions;
    Printf.printf "user TLB misses: %d   kernel TLB misses: %d\n"
      c.Machine.Machine.utlb_misses c.Machine.Machine.ktlb_misses;
    Printf.printf "icache misses: %d   dcache misses: %d   wb stalls: %d\n"
      (Machine.Machine.icache_misses m)
      (Machine.Machine.dcache_misses m)
      (Machine.Machine.wb_stalls m);
    Printf.printf "syscalls: %d   interrupts: %d   disk reads: %d writes: %d\n"
      c.Machine.Machine.syscalls c.Machine.Machine.interrupts
      m.Machine.Machine.disk.Machine.Disk.reads
      m.Machine.Machine.disk.Machine.Disk.writes
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload untraced; print measured counters.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ tier_arg
          $ no_bcache_arg $ trace_len_arg)

let trace_cmd =
  let run name os seed nshow trace_out compress =
    let e = find_workload name in
    let shown = ref 0 in
    let on_event ev =
      if !shown < nshow then begin
        incr shown;
        match ev with
        | Inst { addr; pid; kernel } ->
          Printf.printf "I %08x pid=%d%s\n" addr pid
            (if kernel then " K" else "")
        | Data { addr; pid; kernel; is_load; _ } ->
          Printf.printf "%c %08x pid=%d%s\n"
            (if is_load then 'L' else 'S')
            addr pid
            (if kernel then " K" else "")
      end
    in
    (* --trace-out captures the raw words as they are drained, through the
       streaming file sink: the whole trace is never resident. *)
    let sink =
      match trace_out with
      | None -> Tracing.Sink.null
      | Some path -> Tracing.Sink.to_file ~compress path
    in
    let r =
      run_traced ~os:(os_of os) ~seed ~on_event ~sink
        [ e.Workloads.Suite.program () ]
        e.Workloads.Suite.files
    in
    let s = r.parse_stats in
    Printf.printf "console: %S\n" r.console;
    (match trace_out with
    | None -> ()
    | Some path ->
      Printf.printf "trace words streamed to %s%s\n" path
        (if compress then " (compressed, format v3)" else ""));
    Printf.printf
      "trace: %d words, %d block records, %d markers\n\
       references: %d instructions (%d user / %d kernel, %d idle), %d data\n\
       drains: %d   pid switches: %d   nested-exception markers: %d\n\
       mode transitions: %d\n"
      s.Tracing.Parser.words s.Tracing.Parser.bb_records
      s.Tracing.Parser.markers s.Tracing.Parser.insts
      s.Tracing.Parser.user_insts s.Tracing.Parser.kernel_insts
      s.Tracing.Parser.idle_insts s.Tracing.Parser.datas
      s.Tracing.Parser.drains s.Tracing.Parser.pid_switches
      s.Tracing.Parser.exc_markers s.Tracing.Parser.mode_transitions
  in
  let nshow =
    Arg.(
      value & opt int 0
      & info [ "n"; "show" ] ~doc:"Print the first N reconstructed references.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream the raw trace words to $(docv) while the run executes \
             (chunk by chunk; the whole trace is never held in memory).")
  in
  let compress =
    Arg.(
      value & flag
      & info [ "z"; "compress" ]
          ~doc:
            "Compress the $(b,--trace-out) file (format v3: indexed \
             semantically-preconditioned blocks).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a workload traced; print trace statistics.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ nshow $ trace_out
          $ compress)

let profile_cmd =
  (* The paper's "reference counting tools ... dynamic count of the number
     of times each instruction in the kernel was executed", used to
     identify anomalous system activity (§4.3). *)
  let run name os seed topn =
    let e = find_workload name in
    let cfg =
      {
        Systrace_kernel.Builder.default_config with
        Systrace_kernel.Builder.personality =
          (match os with Validate.Ultrix -> Systrace_kernel.Kcfg.Ultrix
                       | Validate.Mach -> Systrace_kernel.Kcfg.Mach);
        machine_cfg =
          { Machine.Machine.default_config with Machine.Machine.count_exec = true };
        seed;
      }
    in
    let sys =
      run_measured ~os:(os_of os) ~seed ~config:cfg
        [ e.Workloads.Suite.program () ]
        e.Workloads.Suite.files
    in
    let m = sys.Systrace_kernel.Builder.machine in
    let kexe = sys.Systrace_kernel.Builder.kernel_exe in
    (* Aggregate kernel text counts by nearest symbol. *)
    let rev = Hashtbl.create 256 in
    Hashtbl.iter
      (fun sym addr ->
        if addr >= 0x80000000 then
          match Hashtbl.find_opt rev addr with
          | Some old when String.length old <= String.length sym -> ()
          | _ -> Hashtbl.replace rev addr sym)
      kexe.Isa.Exe.symbols;
    let sym_addrs =
      List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) rev [])
    in
    let counts = Hashtbl.create 256 in
    let user_total = ref 0 in
    let ktext_words = Array.length kexe.Isa.Exe.text in
    Array.iteri
      (fun w n ->
        if n > 0 then
          if w < ktext_words then begin
            let va = 0x80000000 + (w * 4) in
            let sym =
              let rec best acc = function
                | a :: rest when a <= va -> best a rest
                | _ -> acc
              in
              let a = best 0x80000000 sym_addrs in
              Option.value ~default:"?" (Hashtbl.find_opt rev a)
            in
            Hashtbl.replace counts sym
              (n + Option.value ~default:0 (Hashtbl.find_opt counts sym))
          end
          else user_total := !user_total + n)
      m.Machine.Machine.exec_counts;
    let rows =
      List.sort (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])
    in
    Printf.printf "instruction execution profile for %s (%s):
" name
      (Validate.os_name os);
    Printf.printf "  %-40s %12s
" "kernel routine" "instructions";
    List.iteri
      (fun i (sym, n) ->
        if i < topn then Printf.printf "  %-40s %12d
" sym n)
      rows;
    Printf.printf "  %-40s %12d
" "(user + DMA'd text)" !user_total
  in
  let topn =
    Arg.(value & opt int 15 & info [ "top" ] ~doc:"Rows to display.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Per-instruction execution counts (the reference-counting tool of \
          paper 4.3), aggregated by kernel routine.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ topn)

let validate_cmd =
  let run name os seed tier no_bcache trace_len =
    let e = find_workload name in
    let spec =
      {
        Validate.wname = e.Workloads.Suite.name;
        files = e.Workloads.Suite.files;
        programs = [ e.Workloads.Suite.program () ];
      }
    in
    let row =
      Validate.run_workload
        ~machine_cfg:(machine_cfg_of ~tier ~no_bcache ~trace_len)
        ~seed os spec
    in
    let m = row.Validate.r_measured and p = row.Validate.r_predicted in
    Printf.printf "%s under %s:\n" name (Validate.os_name os);
    Printf.printf "  measured:  %.4f s (%d cycles), %d user TLB misses\n"
      m.Validate.m_seconds m.Validate.m_cycles m.Validate.m_utlb;
    Printf.printf "  predicted: %.4f s, %d user TLB misses\n"
      p.Validate.p_breakdown.Tracesim.Predict.seconds p.Validate.p_utlb;
    Printf.printf "  error: %.1f%%   dilation: %.1fx\n"
      (Validate.percent_error row) (Validate.dilation row);
    Format.printf "  breakdown: %a@." Tracesim.Predict.pp
      p.Validate.p_breakdown
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Measured vs predicted execution time for one workload.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ tier_arg
          $ no_bcache_arg $ trace_len_arg)

let matrix_cmd =
  (* The full measured-vs-predicted matrix behind Tables 2/3 and Figure 3,
     with each (workload, personality) cell run on a pool of domains. *)
  let run jobs quiet =
    let t0 = Unix.gettimeofday () in
    let progress s =
      if not quiet then
        Printf.eprintf "  [%6.1fs] running %s\n%!" (Unix.gettimeofday () -. t0) s
    in
    let m = Systrace_validate.Experiments.run_matrix ~jobs ~progress () in
    if not quiet then
      Printf.eprintf "  matrix complete in %.1fs (%d jobs)\n%!"
        (Unix.gettimeofday () -. t0) jobs;
    Systrace_util.Table.print (Systrace_validate.Experiments.table2 m);
    print_newline ();
    Systrace_util.Table.print (Systrace_validate.Experiments.figure3 m);
    print_newline ();
    Systrace_util.Table.print (Systrace_validate.Experiments.table3 m)
  in
  let jobs =
    Arg.(
      value
      & opt int (Systrace_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the matrix cells on $(docv) domains (default: the \
             recommended domain count). Results are merged in suite order, \
             so the tables are identical whatever $(docv) is.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run the full validation matrix (Tables 2/3, Figure 3) across all \
          workloads and both personalities.")
    Term.(const run $ jobs $ quiet)

let dump_cmd =
  (* Capture a workload's system trace to a file (the "traces on tape"
     of paper 3.4).  The file sink consumes each ANALYZE phase's chunk as
     it is drained, so the dump runs in O(chunk) memory whatever the
     trace length. *)
  let run name os seed out compress =
    let e = find_workload name in
    let r =
      run_traced ~os:(os_of os) ~seed
        ~sink:(Tracing.Sink.to_file ~compress out)
        [ e.Workloads.Suite.program () ]
        e.Workloads.Suite.files
    in
    let words = r.parse_stats.Tracing.Parser.words in
    Printf.printf "wrote %d trace words (%d references) to %s%s\n" words
      (r.parse_stats.Tracing.Parser.insts + r.parse_stats.Tracing.Parser.datas)
      out
      (if compress then
         (* whole-file ratio: header, blocks and index trailer all count *)
         let file_bytes =
           let ic = open_in_bin out in
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> in_channel_length ic)
         in
         Printf.sprintf " (compressed, %.1fx smaller)"
           (float_of_int (4 * words) /. float_of_int file_bytes)
       else "")
  in
  let out =
    Arg.(value & opt string "trace.strc"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let compress =
    Arg.(value & flag
         & info [ "z"; "compress" ]
             ~doc:
               "Compress the stored trace (format v3: indexed \
                semantically-preconditioned blocks).")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Capture a workload's system trace to a file.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ out $ compress)

let analyze_cmd =
  (* Offline analysis of a stored trace: rebuild the same traced system
     (deterministic for a given workload/os/seed) for its block tables and
     page map, then stream the memory-system simulation straight from the
     file — the trace is decoded chunk by chunk, never materialized, so
     traces larger than memory replay fine. *)
  let run name os seed file =
    let e = find_workload name in
    let open Systrace_kernel in
    let cfg =
      {
        Builder.default_config with
        Builder.traced = true;
        seed;
        personality =
          (match os with Validate.Ultrix -> Kcfg.Ultrix
                       | Validate.Mach -> Kcfg.Mach);
        pagemap =
          (match os with Validate.Ultrix -> Kcfg.Careful
                       | Validate.Mach -> Kcfg.Random);
      }
    in
    let programs =
      match os with
      | Validate.Ultrix -> [ e.Workloads.Suite.program () ]
      | Validate.Mach ->
        [
          Builder.program ~is_server:true "uxserver"
            [ Workloads.Ux_server.make
                ~file_plan:(Builder.file_plan e.Workloads.Suite.files) ();
              Workloads.Userlib.make () ];
          e.Workloads.Suite.program ();
        ]
    in
    let sys = Builder.build ~cfg ~programs ~files:e.Workloads.Suite.files () in
    let mem, parse =
      try
        replay_file ~system:sys ~memsim_cfg:(default_memsim_cfg ~system:sys)
          file
      with Tracing.Tracefile.Bad_file msg ->
        Printf.eprintf "%s: UNREADABLE\n  %s\n" file msg;
        exit 1
    in
    Printf.printf
      "%s: %d words -> %d instructions (%d user / %d kernel), %d data refs\n"
      file parse.Tracing.Parser.words parse.Tracing.Parser.insts
      parse.Tracing.Parser.user_insts parse.Tracing.Parser.kernel_insts
      parse.Tracing.Parser.datas;
    Printf.printf
      "memory system: %d icache misses, %d dcache read misses, %d wb stalls, \
       %d user TLB misses\n"
      mem.Tracesim.Memsim.icache_misses mem.Tracesim.Memsim.dcache_read_misses
      mem.Tracesim.Memsim.wb_stalls mem.Tracesim.Memsim.utlb_misses
  in
  let file =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace file from $(b,systrace dump).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a stored trace offline (workload name selects the \
             matching block tables).")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ file)

let sweep_cmd =
  (* Evaluate a whole geometry grid from ONE streaming pass over a stored
     trace: the trace is decoded and translated once and a
     Tracesim.Memsim.sweep updates every configuration's cache/TLB/write-
     buffer state from the shared decode, so the grid costs about one
     replay instead of one per configuration. *)
  let run name os seed file sizes lines tlbs wbs flat jobs =
    let e = find_workload name in
    let open Systrace_kernel in
    let cfg =
      {
        Builder.default_config with
        Builder.traced = true;
        seed;
        personality =
          (match os with Validate.Ultrix -> Kcfg.Ultrix
                       | Validate.Mach -> Kcfg.Mach);
        pagemap =
          (match os with Validate.Ultrix -> Kcfg.Careful
                       | Validate.Mach -> Kcfg.Random);
      }
    in
    let programs =
      match os with
      | Validate.Ultrix -> [ e.Workloads.Suite.program () ]
      | Validate.Mach ->
        [
          Builder.program ~is_server:true "uxserver"
            [ Workloads.Ux_server.make
                ~file_plan:(Builder.file_plan e.Workloads.Suite.files) ();
              Workloads.Userlib.make () ];
          e.Workloads.Suite.program ();
        ]
    in
    let sys = Builder.build ~cfg ~programs ~files:e.Workloads.Suite.files () in
    let base = default_memsim_cfg ~system:sys in
    let grid =
      try
        Tracesim.Memsim.grid ~nested:(not flat) ~base
          ~sizes:(List.map (fun k -> k * 1024) sizes)
          ~lines ~tlb_entries:tlbs ~wb_depths:wbs ()
      with Invalid_argument msg ->
        Printf.eprintf "bad grid: %s\n" msg;
        exit 1
    in
    let stats, accesses, parse =
      try
        replay_sweep_file ~jobs ~system:sys ~memsim_cfgs:(List.map snd grid)
          file
      with Tracing.Tracefile.Bad_file msg ->
        Printf.eprintf "%s: UNREADABLE\n  %s\n" file msg;
        exit 1
    in
    Printf.printf
      "%s: %d words -> %d instructions, %d data refs; %d configurations in \
       one pass\n\n"
      file parse.Tracing.Parser.words parse.Tracing.Parser.insts
      parse.Tracing.Parser.datas (List.length grid);
    let pct m a = 100.0 *. float_of_int m /. float_of_int (max 1 a) in
    Printf.printf "%-24s %10s %10s %12s %10s\n" "geometry" "ic miss%"
      "dc miss%" "utlb misses" "wb stalls";
    List.iteri
      (fun i (label, _) ->
        let s = stats.(i) in
        let ic_acc, dc_acc = accesses.(i) in
        Printf.printf "%-24s %10.3f %10.3f %12d %10d\n" label
          (pct s.Tracesim.Memsim.icache_misses ic_acc)
          (pct s.Tracesim.Memsim.dcache_read_misses dc_acc)
          s.Tracesim.Memsim.utlb_misses s.Tracesim.Memsim.wb_stalls)
      grid
  in
  let file =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace file from $(b,systrace dump).")
  in
  let sizes =
    Arg.(value & opt (list int) [ 4; 8; 16; 64 ]
         & info [ "sizes" ] ~docv:"KB,..."
             ~doc:"Cache sizes in KB (both caches varied together).")
  in
  let lines =
    Arg.(value & opt (list int) [ 4; 16; 32 ]
         & info [ "lines" ] ~docv:"B,..." ~doc:"Cache line sizes in bytes.")
  in
  let tlbs =
    Arg.(value & opt (list int) [ 16; 32; 64 ]
         & info [ "tlb" ] ~docv:"N,..." ~doc:"TLB entry counts.")
  in
  let wbs =
    Arg.(value & opt (list int) [ 2; 4 ]
         & info [ "wb" ] ~docv:"N,..." ~doc:"Write-buffer depths.")
  in
  let flat =
    Arg.(value & flag
         & info [ "flat" ]
             ~doc:"Direct-map every size instead of growing associativity \
                   with size (disables the nested LRU-stack fast path).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Systrace_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Decode a version-3 trace's blocks on $(docv) domains (the \
             simulation itself stays sequential, so results are identical \
             whatever $(docv) is).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Evaluate a (size x line x TLB x write-buffer) geometry grid \
             over a stored trace in a single streaming pass; print the \
             miss-ratio table.")
    Term.(const run $ workload_arg $ os_arg $ seed_arg $ file $ sizes $ lines
          $ tlbs $ wbs $ flat $ jobs)

let check_cmd =
  (* Validate a stored trace (defensive tracing, paper 4.3).  Always runs
     the table-free structural scan (marker kinds, drain framing,
     exception bracketing, END placement); with --workload, also rebuilds
     the matching traced system and runs the full recovery-mode parse, so
     table-level violations (unknown block records, misplaced data words)
     are diagnosed too.  Both checkers are chunk-fed from one streaming
     pass over the file: a valid 2^26-word trace no longer costs a 256 MB
     up-front allocation. *)
  let run file workload os seed jobs =
    (* Build the full-parse context (if requested) before touching the
       file, so a single [fold_words] pass can feed both checkers. *)
    let full =
      match workload with
      | None -> None
      | Some name ->
        let e = find_workload name in
        let open Systrace_kernel in
        let cfg =
          {
            Builder.default_config with
            Builder.traced = true;
            seed;
            personality =
              (match os with Validate.Ultrix -> Kcfg.Ultrix
                           | Validate.Mach -> Kcfg.Mach);
            pagemap =
              (match os with Validate.Ultrix -> Kcfg.Careful
                           | Validate.Mach -> Kcfg.Random);
          }
        in
        let programs =
          match os with
          | Validate.Ultrix -> [ e.Workloads.Suite.program () ]
          | Validate.Mach ->
            [
              Builder.program ~is_server:true "uxserver"
                [ Workloads.Ux_server.make
                    ~file_plan:(Builder.file_plan e.Workloads.Suite.files) ();
                  Workloads.Userlib.make () ];
              e.Workloads.Suite.program ();
            ]
        in
        let sys = Builder.build ~cfg ~programs ~files:e.Workloads.Suite.files () in
        let p =
          Tracing.Parser.create ~recover:true
            ~kernel_bbs:(Option.get sys.Builder.kernel_bbs) ()
        in
        List.iter
          (fun (pi : Builder.proc_info) ->
            Tracing.Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
          sys.Builder.procs;
        Some (name, p)
    in
    let c = Tracing.Parser.scanner () in
    let feed n ws ~len =
      Tracing.Parser.scan_feed c ws ~len;
      (match full with
      | Some (_, p) -> Tracing.Parser.feed p ws ~len
      | None -> ());
      n + len
    in
    let words =
      try
        (* with -j > 1, a v3 trace's blocks decode on the domain pool;
           the checkers still run sequentially in stream order, so the
           diagnosis list is identical whatever -j is *)
        if jobs > 1 then
          Tracing.Tracefile.fold_blocks_parallel ~jobs file ~init:0 ~f:feed
        else Tracing.Tracefile.fold_words file ~init:0 ~f:feed
      with Tracing.Tracefile.Bad_file msg ->
        Printf.printf "%s: UNREADABLE\n  %s\n" file msg;
        exit 1
    in
    let struct_errs = Tracing.Parser.scan_finish c in
    Printf.printf "%s: %d words, structural scan: %d diagnosis(es)\n" file
      words (List.length struct_errs);
    List.iter
      (fun e -> Printf.printf "  %s\n" (Tracing.Parser.describe e))
      struct_errs;
    let parse_errs =
      match full with
      | None -> []
      | Some (name, p) ->
        Tracing.Parser.finish p;
        let errs = Tracing.Parser.errors p in
        let s = Tracing.Parser.stats p in
        Printf.printf
          "full parse against %s tables: %d diagnosis(es), %d of %d words \
           skipped\n"
          name s.Tracing.Parser.parse_errors s.Tracing.Parser.skipped_words
          s.Tracing.Parser.words;
        List.iter
          (fun e -> Printf.printf "  %s\n" (Tracing.Parser.describe e))
          errs;
        List.iter
          (fun (src, n) ->
            Printf.printf "  skipped %d word(s) attributed to %s\n" n
              (Tracing.Parser.source_name src))
          (Tracing.Parser.skipped p);
        errs
    in
    if struct_errs = [] && parse_errs = [] then begin
      Printf.printf "%s: OK\n" file;
      exit 0
    end
    else exit 1
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace file from $(b,systrace dump).")
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"Also run the full recovery-mode parse against this \
                   workload's block tables (must match the dumped trace).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Systrace_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Decode a version-3 trace's blocks on $(docv) domains; the \
             checkers run in stream order, so the diagnosis list is \
             identical whatever $(docv) is.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Validate a stored trace and print the diagnosis list \
             (defensive tracing, paper 4.3). Exit status 1 if any \
             diagnosis fires.")
    Term.(const run $ file $ workload $ os_arg $ seed_arg $ jobs)

let slice_cmd =
  (* Cut a word window out of a stored trace into a fresh v3 file.  On a
     v3 input only the blocks covering the window are read and decoded
     (the index trailer makes the seek cheap); v1 seeks directly, v2
     decodes from the start but stops at the window's end. *)
  let run file from until out =
    match Tracing.Tracefile.slice ?from ?until file out with
    | n -> Printf.printf "wrote %d words to %s\n" n out
    | exception Tracing.Tracefile.Bad_file msg ->
      Printf.eprintf "%s: UNREADABLE\n  %s\n" file msg;
      exit 1
    | exception Invalid_argument msg ->
      Printf.eprintf "bad window: %s\n" msg;
      exit 1
  in
  let file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Trace file from $(b,systrace dump).")
  in
  let from =
    Arg.(value & opt (some int) None
         & info [ "from" ] ~docv:"WORD"
             ~doc:"First word of the window (default 0).")
  in
  let until =
    Arg.(value & opt (some int) None
         & info [ "until" ] ~docv:"WORD"
             ~doc:"Word after the window's last (default: end of trace).")
  in
  let out =
    Arg.(value & opt string "slice.strc"
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:"Extract the word window [FROM, UNTIL) of a stored trace into \
             a fresh compressed trace file, decoding only the covering \
             blocks.")
    Term.(const run $ file $ from $ until $ out)

let disasm_cmd =
  (* objdump-style listing of a workload binary, original or epoxie-
     instrumented. *)
  let run name instrumented symbol =
    let e = find_workload name in
    let prog = e.Workloads.Suite.program () in
    let open Isa in
    let crt = Systrace_kernel.Builder.crt0 ~traced:instrumented ~user_buf_pages:4 in
    let mods =
      if instrumented then
        let imods, _ = Epoxie.Epoxie.instrument_modules prog.Systrace_kernel.Builder.modules in
        (crt :: imods) @ [ Epoxie.Runtime.make Epoxie.Runtime.User ]
      else crt :: prog.Systrace_kernel.Builder.modules
    in
    let exe =
      Link.link ~name ~text_base:Systrace_kernel.Kcfg.user_text_va
        ~data_base:Systrace_kernel.Kcfg.user_data_va ~entry:"_start" mods
    in
    match symbol with
    | None -> print_string (Exe.disassemble exe)
    | Some sym ->
      let lo = Exe.symbol exe sym in
      print_string (Exe.disassemble ~lo ~hi:(lo + 400) exe)
  in
  let instrumented =
    Arg.(value & flag & info [ "instrumented"; "i" ]
           ~doc:"Disassemble the epoxie-instrumented binary.")
  in
  let symbol =
    Arg.(value & opt (some string) None
         & info [ "symbol"; "s" ] ~doc:"Start at SYMBOL (e.g. main).")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a workload binary.")
    Term.(const run $ workload_arg $ instrumented $ symbol)

let serve_cmd =
  (* The trace-ingest daemon (and its client / control modes).  One
     subcommand, three roles:
       systrace serve --unix /tmp/s.sock --ctl /tmp/s.ctl   -- daemon
       systrace serve --send FILE --connect unix:/tmp/s.sock -- client
       systrace serve --stats --ctl /tmp/s.ctl               -- control *)
  let parse_addr s =
    match String.split_on_char ':' s with
    | [ "unix"; p ] -> Ok (Serve.Client.Unix_path p)
    | [ "tcp"; host; port ] -> (
      match int_of_string_opt port with
      | Some p -> Ok (Serve.Client.Tcp (host, p))
      | None -> Error (Printf.sprintf "bad port in %S" s))
    | [ "tcp"; port ] -> (
      match int_of_string_opt port with
      | Some p -> Ok (Serve.Client.Tcp ("127.0.0.1", p))
      | None -> Error (Printf.sprintf "bad port in %S" s))
    | _ -> Error (Printf.sprintf "bad address %S (unix:PATH or tcp:HOST:PORT)" s)
  in
  (* Control-socket request: one line out, print everything that comes
     back (the stats reply is multi-line). *)
  let ctl_request path cmd =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX path);
        ignore (Unix.write_substring fd (cmd ^ "\n") 0 (String.length cmd + 1));
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        let b = Bytes.create 4096 in
        let rec go () =
          match Unix.read fd b 0 4096 with
          | 0 -> ()
          | n ->
            print_string (Bytes.sub_string b 0 n);
            go ()
        in
        go ())
  in
  (* Full-parse pipeline factory: build the traced system once, then a
     fresh recovery-mode parser per stream.  The shared block tables are
     only read by the per-stream parsers, so sharing them across worker
     domains is safe. *)
  let parse_factory name os seed =
    let e = find_workload name in
    let open Systrace_kernel in
    let cfg =
      {
        Builder.default_config with
        Builder.traced = true;
        seed;
        personality =
          (match os with Validate.Ultrix -> Kcfg.Ultrix
                       | Validate.Mach -> Kcfg.Mach);
        pagemap =
          (match os with Validate.Ultrix -> Kcfg.Careful
                       | Validate.Mach -> Kcfg.Random);
      }
    in
    let programs =
      match os with
      | Validate.Ultrix -> [ e.Workloads.Suite.program () ]
      | Validate.Mach ->
        [
          Builder.program ~is_server:true "uxserver"
            [ Workloads.Ux_server.make
                ~file_plan:(Builder.file_plan e.Workloads.Suite.files) ();
              Workloads.Userlib.make () ];
          e.Workloads.Suite.program ();
        ]
    in
    let sys = Builder.build ~cfg ~programs ~files:e.Workloads.Suite.files () in
    Serve.Server.to_parser_pipeline (fun () ->
        let p =
          Tracing.Parser.create ~recover:true
            ~kernel_bbs:(Option.get sys.Builder.kernel_bbs) ()
        in
        List.iter
          (fun (pi : Builder.proc_info) ->
            Tracing.Parser.register_pid p ~pid:pi.pid (Option.get pi.bbs))
          sys.Builder.procs;
        p)
  in
  let run unix_path tcp_port_opt ctl_path workers queue_slots slot_words lossy
      pipeline workload os seed send connect do_stats do_shutdown =
    match (send, do_stats, do_shutdown) with
    | Some file, false, false -> (
      (* client: replay a stored trace at a running daemon *)
      match connect with
      | None ->
        Printf.eprintf "--send needs --connect\n";
        exit 2
      | Some addr_s -> (
        match parse_addr addr_s with
        | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
        | Ok addr -> (
          match Serve.Client.run_file addr file with
          | Some r ->
            Printf.printf
              "ok words=%d frames=%d dropped_words=%d dropped_frames=%d \
               diagnoses=%d\n"
              r.Serve.Client.r_words r.Serve.Client.r_frames
              r.Serve.Client.r_dropped_words r.Serve.Client.r_dropped_frames
              r.Serve.Client.r_diagnoses
          | None ->
            Printf.eprintf "stream rejected or connection lost\n";
            exit 1)))
    | None, true, _ | None, false, true -> (
      (* control: stats / shutdown against the control socket *)
      match ctl_path with
      | None ->
        Printf.eprintf "--stats/--shutdown need --ctl PATH\n";
        exit 2
      | Some p -> ctl_request p (if do_stats then "stats" else "shutdown"))
    | None, false, false ->
      (* daemon *)
      if unix_path = None && tcp_port_opt = None then begin
        Printf.eprintf
          "nothing to do: give --unix/--tcp to serve, --send to stream, \
           or --stats/--shutdown to control\n";
        exit 2
      end;
      let factory =
        match pipeline with
        | "null" -> Serve.Server.null_pipeline
        | "scan" -> Serve.Server.scan_pipeline
        | "parse" -> (
          match workload with
          | Some name -> parse_factory name os seed
          | None ->
            Printf.eprintf "--pipeline parse needs -w WORKLOAD\n";
            exit 2)
        | other ->
          Printf.eprintf "unknown pipeline %S (null|scan|parse)\n" other;
          exit 2
      in
      let cfg =
        {
          (Serve.Server.default_config factory) with
          Serve.Server.unix_path;
          tcp = Option.map (fun p -> ("127.0.0.1", p)) tcp_port_opt;
          ctl_path;
          workers;
          queue_slots;
          slot_words;
          lossy;
        }
      in
      let t = Serve.Server.start cfg in
      Option.iter (Printf.printf "unix %s\n") unix_path;
      Option.iter (Printf.printf "tcp 127.0.0.1:%d\n") (Serve.Server.tcp_port t);
      Option.iter (Printf.printf "ctl %s\n") ctl_path;
      Printf.printf "workers %d queue %dx%d words %s\n%!" (max 1 workers)
        queue_slots slot_words
        (if lossy then "lossy" else "lossless");
      Serve.Server.wait t
    | Some _, _, _ ->
      Printf.eprintf "--send cannot be combined with --stats/--shutdown\n";
      exit 2
  in
  let unix_path =
    Arg.(value & opt (some string) None
         & info [ "unix" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let tcp_port =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Listen on 127.0.0.1:$(docv) (0 picks an ephemeral port, \
                   printed at startup).")
  in
  let ctl_path =
    Arg.(value & opt (some string) None
         & info [ "ctl" ] ~docv:"PATH"
             ~doc:"Control socket: $(b,--stats) and $(b,--shutdown) talk to \
                   it.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_slots =
    Arg.(value & opt int 4
         & info [ "queue-slots" ] ~docv:"N"
             ~doc:"Bounded-queue ring slots per connection.")
  in
  let slot_words =
    Arg.(value & opt int 16384
         & info [ "slot-words" ] ~docv:"N"
             ~doc:"Words per queue slot (peak resident words per stream = \
                   slots x words).")
  in
  let lossy =
    Arg.(value & flag
         & info [ "lossy" ]
             ~doc:"Drop-and-count instead of backpressure when a client \
                   outruns analysis (the paper's lost-reference accounting).")
  in
  let pipeline =
    Arg.(value & opt string "scan"
         & info [ "pipeline" ] ~docv:"KIND"
             ~doc:"Per-stream analysis: $(b,null) (ingest only), $(b,scan) \
                   (structural trace check; default), or $(b,parse) (full \
                   recovery-mode parse against a workload's tables; needs \
                   $(b,-w)).")
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~docv:"WORKLOAD"
             ~doc:"Workload whose block tables the $(b,parse) pipeline \
                   checks against.")
  in
  let send =
    Arg.(value & opt (some string) None
         & info [ "send" ] ~docv:"FILE"
             ~doc:"Client mode: stream this stored trace at a daemon and \
                   print its reply.")
  in
  let connect =
    Arg.(value & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Daemon address for $(b,--send): $(b,unix:PATH) or \
                   $(b,tcp:HOST:PORT).")
  in
  let do_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print a running daemon's aggregated counters (via \
                   $(b,--ctl)).")
  in
  let do_shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Gracefully stop a running daemon (via $(b,--ctl)).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Trace-ingest daemon: accept concurrent trace streams over \
             Unix/TCP sockets and run a per-stream analysis pipeline \
             online, with bounded-queue backpressure (or $(b,--lossy) \
             lost-reference accounting) and aggregated counters on a \
             control socket.")
    Term.(const run $ unix_path $ tcp_port $ ctl_path $ workers $ queue_slots
          $ slot_words $ lossy $ pipeline $ workload $ os_arg $ seed_arg
          $ send $ connect $ do_stats $ do_shutdown)

let () =
  let doc = "software methods for system address tracing" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "systrace" ~doc)
          [ list_cmd; run_cmd; trace_cmd; validate_cmd; matrix_cmd; profile_cmd;
            disasm_cmd; dump_cmd; analyze_cmd; sweep_cmd; check_cmd;
            slice_cmd; serve_cmd ]))
